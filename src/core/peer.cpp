#include "core/peer.hpp"

#include <algorithm>
#include <cmath>

#include "interest/delta.hpp"
#include "interest/vision.hpp"

namespace watchmen::core {

namespace {
Misbehavior g_honest;
}  // namespace

Misbehavior& honest_behavior() { return g_honest; }

WatchmenPeer::WatchmenPeer(PlayerId id, WatchmenConfig cfg, net::Transport& net,
                           const crypto::KeyRegistry& keys,
                           const ProxySchedule& schedule,
                           const game::GameMap& map, ReportFn report,
                           Misbehavior* misbehavior)
    : id_(id),
      cfg_(std::move(cfg)),
      net_(&net),
      keys_(&keys),
      schedule_(schedule),
      map_(&map),
      report_(std::move(report)),
      misbehavior_(misbehavior ? misbehavior : &honest_behavior()),
      know_(schedule.num_players()),
      recv_state_in_round_(schedule.num_players(), 0),
      is_held_frames_in_round_(schedule.num_players(), 0),
      pending_starve_(schedule.num_players()),
      churn_removal_round_(schedule.num_players(), -1),
      churn_restore_round_(schedule.num_players(), -1),
      pool_eligible_(schedule.num_players(), true) {}

void WatchmenPeer::set_pool_standing(PlayerId p, bool eligible) {
  if (p >= schedule_.num_players()) return;
  if (pool_eligible_[p] == eligible) return;
  pool_eligible_[p] = eligible;
  if (!eligible && schedule_.in_pool(p)) {
    schedule_.set_weight(p, 0.0);
    // Schedules shift under everyone's feet at the same boundary; suppress
    // the transient protocol-violation noise like any other pool change.
    last_pool_change_round_ = round_;
  }
}

// --------------------------------------------------------------- sending

void WatchmenPeer::send_wire(PlayerId to, std::vector<std::uint8_t> wire) {
  ++metrics_.messages_sent;
  net_send(to,
           std::make_shared<const std::vector<std::uint8_t>>(std::move(wire)));
}

void WatchmenPeer::net_send(
    PlayerId to, std::shared_ptr<const std::vector<std::uint8_t>> wire) {
  if (!cfg_.batching) {
    net_->send(id_, to, std::move(wire));
    return;
  }
  // First-touch destination order keeps the flush deterministic.
  for (BatchSlot& slot : batch_buf_) {
    if (slot.to != to) continue;
    slot.wires.push_back(std::move(wire));
    if (slot.wires.size() >= kMaxBatchMessages) {
      // Container full: coalesce what we have and start the slot over.
      flush_slot(slot);
    }
    return;
  }
  batch_buf_.push_back({to, {std::move(wire)}});
}

void WatchmenPeer::send_batch_group(
    PlayerId to,
    std::vector<std::shared_ptr<const std::vector<std::uint8_t>>>& group) {
  if (group.empty()) return;
  metrics_.batch_sizes.add(static_cast<double>(group.size()));
  if (group.size() == 1) {
    // A lone message rides bare: no container overhead, and the leading
    // type byte keeps per-class stats exact.
    net_->send(id_, to, std::move(group.front()));
    group.clear();
    return;
  }
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kBatch));
  w.varint(group.size());
  for (const auto& sub : group) w.blob(*sub);
  ++metrics_.batches_sent;
  metrics_.batched_messages += group.size();
  net_->send(id_, to, w.take());
  group.clear();
}

void WatchmenPeer::flush_slot(BatchSlot& slot) {
  if (slot.wires.empty()) return;
  if (cfg_.mtu_bytes == 0) {
    send_batch_group(slot.to, slot.wires);
    return;
  }
  // MTU-aware split: greedily pack sub-wires into containers whose encoded
  // size stays under cfg_.mtu_bytes. A sub-wire that alone busts the budget
  // still goes out (bare, as its own group) — the transport's oversize
  // accounting owns that case; silently holding it would lose the message
  // with no signal at all.
  const auto varint_len = [](std::size_t v) {
    std::size_t n = 1;
    while (v >= 0x80) {
      v >>= 7;
      ++n;
    }
    return n;
  };
  // Container fixed cost: type byte + count varint (<= 2 bytes for the
  // 512-message cap).
  constexpr std::size_t kContainerOverhead = 3;
  std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> group;
  std::size_t group_bytes = kContainerOverhead;
  for (auto& sub : slot.wires) {
    const std::size_t cost = varint_len(sub->size()) + sub->size();
    if (!group.empty() && group_bytes + cost > cfg_.mtu_bytes) {
      send_batch_group(slot.to, group);
      group_bytes = kContainerOverhead;
    }
    group.push_back(std::move(sub));
    group_bytes += cost;
  }
  send_batch_group(slot.to, group);
  slot.wires.clear();
}

void WatchmenPeer::flush_batches() {
  if (batch_buf_.empty()) return;
  for (BatchSlot& slot : batch_buf_) {
    if (slot.wires.empty()) continue;  // drained by an early full-slot flush
    flush_slot(slot);
  }
  batch_buf_.clear();
}

void WatchmenPeer::note_published(Frame f, std::uint32_t seq,
                                  const game::AvatarState& s) {
  published_.put(f, s);
  SentSeq& slot = sent_seqs_[seq % sent_seqs_.size()];
  slot.seq = seq;
  slot.frame = f;
}

std::vector<std::uint8_t> WatchmenPeer::make_sealed(
    MsgType type, PlayerId subject, Frame frame,
    std::span<const std::uint8_t> body) {
  ++metrics_.sent_by_type[static_cast<std::size_t>(type)];
  MsgHeader h;
  h.type = type;
  h.origin = id_;
  h.subject = subject;
  h.frame = frame;
  h.seq = seq_++;
  last_sealed_seq_ = h.seq;
  return seal(h, body, keys_->key_pair(id_), cfg_.compact_headers);
}

void WatchmenPeer::send_to_proxy(MsgType type, PlayerId subject, Frame frame,
                                 std::span<const std::uint8_t> body,
                                 Frame delay) {
  auto wire = make_sealed(type, subject, frame, body);
  if (delay > 0) {
    // Look-ahead cheat: hold the sealed message and release it late; the
    // destination proxy is recomputed at release time.
    outbox_.push_back({frame_ + delay, kInvalidPlayer, std::move(wire)});
    return;
  }
  const PlayerId px = schedule_.proxy_at(id_, frame_);
  const bool reliable = cfg_.reliable_control && type == MsgType::kSubscribe;
  if (!reliable && !proxy_silent(px)) {
    send_wire(px, std::move(wire));
    return;
  }
  auto shared = std::make_shared<const std::vector<std::uint8_t>>(std::move(wire));
  ++metrics_.messages_sent;
  net_send(px, shared);
  if (reliable) track_reliable(px, id_, last_sealed_seq_, type, shared);
  if (proxy_silent(px)) {
    // Emergency failover: our proxy has gone fully silent past the
    // configured window. Duplicate proxy-bound traffic to the
    // successor-of-round, which adopts us early; if the proxy was merely
    // quiet the duplicate is redundant, never harmful.
    const PlayerId succ = schedule_.proxy_of(id_, schedule_.round_of(frame_) + 1);
    if (succ != px && succ != id_) {
      ++metrics_.messages_sent;
      net_send(succ, shared);
    }
  }
}

bool WatchmenPeer::proxy_silent(PlayerId px) const {
  if (px == id_ || px >= schedule_.num_players()) return false;
  const Frame silence = frame_ - std::max<Frame>(know_[px].last_heard, 0);
  // The watchdog's Suspect threshold doubles as the emergency-failover
  // trigger: with heartbeats flowing every heartbeat_period frames, a
  // Suspect-grade silence is already several missed beacons, not jitter.
  if (cfg_.liveness_watchdog && silence > cfg_.watchdog_suspect_frames) {
    return true;
  }
  if (cfg_.proxy_failover_silence <= 0) return false;
  return silence > cfg_.proxy_failover_silence;
}

// ---------------------------------------------------- liveness watchdog

Frame WatchmenPeer::silence_of(PlayerId p, Frame f) const {
  return f - std::max<Frame>(know_[p].last_heard, 0);
}

void WatchmenPeer::run_watchdog(Frame f) {
  if (!cfg_.liveness_watchdog) return;
  if (watchdog_state_.empty()) {
    watchdog_state_.assign(schedule_.num_players(), 0);
  }
  // Heartbeat on a per-player staggered cadence so beacons spread across
  // frames instead of synchronizing the whole session onto one.
  const Frame period = std::max<Frame>(1, cfg_.heartbeat_period);
  if ((f + static_cast<Frame>(id_)) % period == 0) {
    const PlayerId px = schedule_.proxy_at(id_, f);
    const auto beacon = [&](PlayerId to) {
      if (to == id_ || to >= schedule_.num_players()) return;
      send_wire(to, make_sealed(MsgType::kHeartbeat, to, f, {}));
    };
    beacon(px);
    for (const PlayerId q : proxied_players()) beacon(q);
  }
  // Grade the relationships the heartbeats cover: our current proxy and
  // the players we proxy. Alive -> Suspect -> Dead from receive silence;
  // any traffic (heartbeat or game) heals the grade back to Alive.
  const auto grade = [&](PlayerId p) {
    if (p == id_ || p >= schedule_.num_players()) return;
    const Frame s = silence_of(p, f);
    std::uint8_t next = static_cast<std::uint8_t>(PeerLiveness::kAlive);
    if (s > cfg_.watchdog_dead_frames) {
      next = static_cast<std::uint8_t>(PeerLiveness::kDead);
    } else if (s > cfg_.watchdog_suspect_frames) {
      next = static_cast<std::uint8_t>(PeerLiveness::kSuspect);
    }
    std::uint8_t& st = watchdog_state_[p];
    if (next > st) {
      if (st < 1) ++metrics_.watchdog_suspects;
      if (next == 2) ++metrics_.watchdog_deaths;
    }
    st = next;
  };
  grade(schedule_.proxy_at(id_, f));
  for (const PlayerId q : proxied_players()) grade(q);
}

// ----------------------------------------------------- reliable control

void WatchmenPeer::track_reliable(
    PlayerId to, PlayerId origin, std::uint32_t seq, MsgType type,
    std::shared_ptr<const std::vector<std::uint8_t>> wire) {
  PendingReliable p;
  p.to = to;
  p.origin = origin;
  p.seq = seq;
  p.type = type;
  p.wire = std::move(wire);
  p.backoff = std::max<Frame>(1, cfg_.retransmit_backoff);
  p.next_retry = frame_ + p.backoff;
  if (cfg_.retransmit_jitter) {
    p.next_retry += retransmit_jitter(origin, seq, p.attempt, p.backoff);
  }
  p.retries_left = cfg_.retransmit_budget;
  reliable_.push_back(std::move(p));
}

void WatchmenPeer::flush_retransmits(Frame f) {
  for (auto it = reliable_.begin(); it != reliable_.end();) {
    if (it->next_retry > f) {
      ++it;
      continue;
    }
    if (it->retries_left <= 0) {
      ++metrics_.reliable_expired;
      it = reliable_.erase(it);
      continue;
    }
    --it->retries_left;
    ++metrics_.retransmits_by_type[static_cast<std::size_t>(it->type)];
    ++metrics_.messages_sent;
    net_send(it->to, it->wire);
    it->backoff *= 2;
    ++it->attempt;
    it->next_retry = f + it->backoff;
    if (cfg_.retransmit_jitter) {
      it->next_retry +=
          retransmit_jitter(it->origin, it->seq, it->attempt, it->backoff);
    }
    ++it;
  }
}

void WatchmenPeer::maybe_ack(const net::Envelope& env, const MsgHeader& h) {
  if (!cfg_.reliable_control || !is_control_type(h.type) || env.from == id_) {
    return;
  }
  AckBody a;
  a.acked_origin = h.origin;
  a.acked_seq = h.seq;
  a.acked_type = h.type;
  const auto body = encode_ack_body(a);
  ++metrics_.acks_sent;
  send_wire(env.from,
            make_sealed(MsgType::kAck, h.origin, net_->clock().frame(), body));
}

void WatchmenPeer::handle_ack(const net::Envelope& env,
                              const ParsedMessage& msg) {
  if (!cfg_.reliable_control && !cfg_.ack_anchored) return;
  if (env.from != msg.header.origin) return;  // acks travel one hop, unsigned relays don't
  AckBody a;
  try {
    a = decode_ack_body(msg.body);
  } catch (const DecodeError&) {
    return;
  }
  ++metrics_.acks_received;
  if (a.acked_type == MsgType::kStateUpdate) {
    // Frequent-stream ack: our proxy acknowledged one of our own state
    // updates. Resolve the acked seq back to its frame and advance the
    // delta anchor (monotonically — reordered acks never move it back).
    // Only a plausible proxy-of-round may steer our anchor: a forged ack
    // from anyone else could pin deltas to baselines the proxy never held.
    if (!cfg_.ack_anchored || a.acked_origin != id_) return;
    const std::int64_t r = schedule_.round_of(frame_);
    const bool from_proxy =
        env.from == schedule_.proxy_of(id_, r) ||
        env.from == schedule_.proxy_of(id_, r + 1) ||
        (r > 0 && env.from == schedule_.proxy_of(id_, r - 1));
    if (!from_proxy) return;
    const SentSeq& slot = sent_seqs_[a.acked_seq % sent_seqs_.size()];
    if (slot.frame >= 0 && slot.seq == a.acked_seq &&
        slot.frame > acked_frame_) {
      acked_frame_ = slot.frame;
    }
    return;
  }
  if (!cfg_.reliable_control) return;
  std::erase_if(reliable_, [&](const PendingReliable& p) {
    return p.to == env.from && p.origin == a.acked_origin &&
           p.seq == a.acked_seq && p.type == a.acked_type;
  });
}

// --------------------------------------------------------------- frames

void WatchmenPeer::begin_frame(Frame f) {
  frame_ = f;
  const std::int64_t r = schedule_.round_of(f);
  if (r != round_) {
    round_ = r;
    // Apply agreed churn removals: departed players leave the proxy pool at
    // the round announced in the churn notice, keeping schedules consistent.
    for (PlayerId q = 0; q < schedule_.num_players(); ++q) {
      if (churn_removal_round_[q] >= 0 && r >= churn_removal_round_[q] &&
          schedule_.in_pool(q)) {
        schedule_.remove_from_pool(q);
        last_pool_change_round_ = r;
      }
    }
    // Apply agreed pool restores (the churn agreement run in reverse): a
    // rejoined or heal-recovered player re-enters every pool at the round
    // its kRejoinNotice announced.
    for (PlayerId q = 0; q < schedule_.num_players(); ++q) {
      if (churn_restore_round_[q] < 0 || r < churn_restore_round_[q]) continue;
      // Restores only undo *churn* removals; a node configured out of the
      // pool (weight 0) or reputation-barred (set_pool_standing) stays out
      // no matter what notices claim.
      if (!schedule_.in_pool(q) && churn_removal_round_[q] >= 0 &&
          pool_eligible_[q]) {
        schedule_.restore_to_pool(q);
        last_pool_change_round_ = r;
      }
      churn_restore_round_[q] = -1;
      churn_removal_round_[q] = -1;
      pending_starve_[q].active = false;
    }
    // Pool reconciliation, run by whoever serves a churn-removed player
    // this round (its proxy in *our* view):
    //  * player demonstrably back (heard within the last renewal period):
    //    re-announce its restore — heals divergence after partitions and
    //    covers rejoin notices that were themselves lost;
    //  * player still dead: re-broadcast the removal notice so peers that
    //    missed the original converge (they corroborate the silence
    //    locally, so the notice is accepted from us even where pools
    //    disagree about who the proxy is).
    for (PlayerId q = 0; q < schedule_.num_players(); ++q) {
      if (q == id_ || schedule_.in_pool(q) || churn_removal_round_[q] < 0) {
        continue;
      }
      if (schedule_.proxy_of(q, r) != id_) continue;
      const Frame heard = know_[q].last_heard;
      if (heard >= 0 && f - heard <= cfg_.renewal_frames) {
        if (churn_restore_round_[q] >= 0) continue;  // already scheduled
        const std::int64_t restore = r + protocol::kRejoinRestoreDelayRounds;
        churn_restore_round_[q] = restore;
        broadcast_control(MsgType::kRejoinNotice, q,
                          encode_rejoin_body(restore));
      } else {
        broadcast_control(MsgType::kChurnNotice, q, encode_churn_body(r + 1));
      }
    }
    // Adopt players newly assigned to this peer. Their handoff (state +
    // subscription table) arrives from the old proxy within a few frames.
    for (PlayerId p = 0; p < schedule_.num_players(); ++p) {
      if (p == id_) continue;
      if (schedule_.proxy_of(p, r) == id_ && !proxied_.contains(p)) {
        ProxiedState ps(cfg_.renewal_frames);
        ps.adopted_at = f;
        proxied_.emplace(p, std::move(ps));
      }
    }
  }
  std::erase_if(grace_, [f](const auto& kv) { return kv.second.expires < f; });

  run_watchdog(f);
  if (cfg_.reliable_control) flush_retransmits(f);
  flush_pending_subs(f);

  // Direct-update mode: periodically tell each proxied player who its IS
  // subscribers are, so it can push 1-hop updates (staggered, 2 Hz).
  if (cfg_.direct_updates) {
    // Sorted id order: wire traffic must not depend on hash iteration order.
    for (const PlayerId q : proxied_players()) {
      if ((f + q) % 10 != 0) continue;
      ProxiedState& ps = proxied_.at(q);
      auto subscribers =
          ps.subs.subscribers(interest::SetKind::kInterest, f);
      // Subscriber diffs: most sends carry only the ids that changed since
      // the last list, guarded by a baseline hash; every 4th send is a full
      // refresh so a lost list (hash miss at the player) self-heals.
      const bool full = !cfg_.subscriber_diffs || ps.sub_sends % 4 == 0;
      const auto body =
          full ? encode_subscriber_list_body(subscribers)
               : encode_subscriber_list_diff_body(ps.sent_subs, subscribers);
      ++ps.sub_sends;
      ps.sent_subs = std::move(subscribers);
      send_wire(q, make_sealed(MsgType::kSubscriberList, q, f, body));
    }
  }

  // Release delayed messages.
  while (!outbox_.empty() && outbox_.front().release <= f) {
    Delayed d = std::move(outbox_.front());
    outbox_.pop_front();
    const PlayerId to =
        d.to == kInvalidPlayer ? schedule_.proxy_at(id_, f) : d.to;
    send_wire(to, std::move(d.wire));
  }

  flush_batches();
}

void WatchmenPeer::produce(std::span<const game::AvatarState> truth,
                           const interest::PlayerSets& sets,
                           std::span<const game::KillEvent> kills) {
  const Frame f = frame_;
  own_state_ = truth[id_];
  has_own_state_ = true;
  const Frame delay = misbehavior_->send_delay(f);

  // 1. Frequent state update, every frame, through the proxy; delta-coded
  //    against the previous frame when enabled, with periodic keyframes.
  const game::AvatarState published = misbehavior_->mutate_state(own_state_, f);
  if (misbehavior_->send_state_update(f)) {
    bool keyframe = !cfg_.delta_updates || last_keyframe_frame_ < 0 ||
                    f - last_keyframe_frame_ >= cfg_.keyframe_period;
    if (cfg_.ack_anchored) {
      // A new proxy tenure starts with no decoded baseline: reset the
      // anchored chain and seed it with a fresh keyframe, whatever the
      // keyframe cadence. Without this, a long keyframe_period strands the
      // new proxy on deltas it can never decode (it also never acks, so
      // the stream would stay dead for the whole tenure).
      const PlayerId proxy_now = schedule_.proxy_at(id_, f);
      if (proxy_now != anchor_proxy_) {
        anchor_proxy_ = proxy_now;
        acked_frame_ = -1;
        keyframe = true;
      }
    }
    // Baseline preference: the receiver-acked state when the anchor is live
    // (ack-anchored mode), else the last keyframe. A valid anchor survives
    // any loss pattern — the proxy acked it, so the proxy holds it — while
    // the keyframe baseline desyncs every receiver that missed it.
    const game::AvatarState* anchor =
        !keyframe && cfg_.ack_anchored && acked_frame_ >= 0 &&
                f - acked_frame_ >= 1 && f - acked_frame_ <= 255
            ? published_.get(acked_frame_)
            : nullptr;
    // The delta age rides a u8; past 255 frames since the keyframe the
    // legacy fallback would wrap into a bogus age, so refresh instead.
    // (Reachable when the anchor goes stale under sustained loss faster
    // than the keyframe cadence refreshes the baseline.)
    if (!keyframe && !anchor && f - last_keyframe_frame_ > 255) {
      keyframe = true;
    }
    std::vector<std::uint8_t> body;
    if (keyframe) {
      body = encode_state_body(published);
    } else if (anchor) {
      body = encode_state_body_delta_anchored(
          *anchor, acked_frame_, static_cast<std::uint8_t>(f - acked_frame_),
          published);
      ++metrics_.anchored_sent;
    } else {
      body = encode_state_body_delta(
          last_keyframe_, static_cast<std::uint8_t>(f - last_keyframe_frame_),
          published);
    }
    send_to_proxy(MsgType::kStateUpdate, id_, f, body, delay);
    if (cfg_.ack_anchored) note_published(f, last_sealed_seq_, published);
    if (cfg_.direct_updates && delay == 0) {
      // §VI optimization 3: one hop to the IS subscribers our proxy named;
      // the proxy copy above still feeds verification (and serves the proxy
      // itself if it happens to be a subscriber — don't double-send).
      const PlayerId my_proxy = schedule_.proxy_at(id_, f);
      const auto wire = make_sealed(MsgType::kStateUpdate, id_, f, body);
      for (PlayerId to : direct_targets_) {
        if (to != id_ && to != my_proxy) send_wire(to, wire);
      }
    }
    for (int i = misbehavior_->extra_state_updates(f); i > 0; --i) {
      send_to_proxy(MsgType::kStateUpdate, id_, f, body, delay);
      if (cfg_.ack_anchored) note_published(f, last_sealed_seq_, published);
    }
    if (keyframe) {
      last_keyframe_ = published;
      last_keyframe_frame_ = f;
    }
  }

  // 2. Guidance + infrequent position update, once per guidance period
  //    (staggered by player id to spread the load across frames).
  if ((f + static_cast<Frame>(id_) * 7) % cfg_.guidance_period == 0) {
    interest::Guidance g = interest::make_guidance(
        published, f, cfg_.guidance_waypoints, cfg_.dr_damping);
    g = misbehavior_->mutate_guidance(g, f);
    const auto gbody = cfg_.quantized_guidance ? encode_guidance_body_q(g)
                                               : encode_guidance_body(g);
    send_to_proxy(MsgType::kGuidance, id_, f, gbody, delay);

    const auto pbody = encode_position_body(published.pos);
    send_to_proxy(MsgType::kPositionUpdate, id_, f, pbody, delay);
  }

  // 3. Kill claims for this player's kills this frame.
  for (const game::KillEvent& k : kills) {
    if (k.killer != id_) continue;
    KillClaim claim;
    claim.victim = k.victim;
    claim.weapon = k.weapon;
    claim.distance = k.distance;
    claim.victim_pos = truth[k.victim].pos;
    const auto body = encode_kill_body(claim);
    send_to_proxy(MsgType::kKillClaim, k.victim, f, body, delay);
  }
  for (const KillClaim& claim : misbehavior_->bogus_kill_claims(f)) {
    const auto body = encode_kill_body(claim);
    send_to_proxy(MsgType::kKillClaim, claim.victim, f, body, delay);
  }

  // 4. Subscriptions with retention (paper §VI): *upgrades* (needing more
  //    detail than currently subscribed) go out immediately; downgrades and
  //    steady states ride the periodic refresh, so transient set churn
  //    generates no traffic and lapsed targets simply time out.
  auto level_rank = [](interest::SetKind k) {
    switch (k) {
      case interest::SetKind::kInterest: return 2;
      case interest::SetKind::kVision: return 1;
      case interest::SetKind::kOther: return 0;
    }
    return 0;
  };
  auto want = [&](PlayerId target, interest::SetKind kind) {
    const auto it = sent_level_.find(target);
    const Frame last = sent_level_frame_.contains(target)
                           ? sent_level_frame_[target]
                           : Frame{-10000};
    // The level we hold at the proxy: the last one we sent, until the
    // proxy-side retention (one renewal period) would have expired it.
    const interest::SetKind held =
        (it == sent_level_.end() || f - last > cfg_.renewal_frames)
            ? interest::SetKind::kOther
            : it->second;
    const bool upgrade = level_rank(kind) > level_rank(held);
    // Self-healing: if we believe we hold a frequent subscription but the
    // stream has gone silent (lost subscribe, lost handoff), re-subscribe
    // instead of waiting out the refresh period.
    const bool starved = held == interest::SetKind::kInterest &&
                         kind == interest::SetKind::kInterest &&
                         f - last > 8 && f - know_[target].newest_frame > 8;
    if (upgrade || starved || f - last >= cfg_.subscription_refresh) {
      const auto body = encode_subscribe_body(kind);
      send_to_proxy(MsgType::kSubscribe, target, f, body, delay);
      sent_level_[target] = kind;
      sent_level_frame_[target] = f;
    }
  };
  for (PlayerId t : sets.interest) want(t, interest::SetKind::kInterest);
  for (PlayerId t : sets.vision) want(t, interest::SetKind::kVision);

  // Track how many frames of frequent updates we are entitled to expect
  // about each target this round: we must both currently *want* the target
  // in our IS and hold an unexpired IS subscription for it.
  for (PlayerId t : sets.interest) {
    const auto it = sent_level_.find(t);
    if (it != sent_level_.end() && it->second == interest::SetKind::kInterest &&
        f - sent_level_frame_[t] <= cfg_.renewal_frames) {
      ++is_held_frames_in_round_[t];
    }
    // Per-frame staleness of what we actually hold about each IS target —
    // unlike update_age_frames (which only sees updates that *arrived*),
    // this grows when loss or a dead proxy starves the stream, making it
    // the freshness signal the chaos suite compares against its baseline.
    // Players agreed departed (their trace avatar lingers as a ghost no
    // node animates) would grow without bound and are excluded.
    if (know_[t].state_frame >= 0 && churn_removal_round_[t] < 0) {
      metrics_.staleness_frames.add(static_cast<double>(f - know_[t].state_frame));
    }
  }

  for (const auto& [target, kind] : misbehavior_->bogus_subscriptions(f)) {
    const auto body = encode_subscribe_body(kind);
    send_to_proxy(MsgType::kSubscribe, target, f, body, delay);
  }

  // 5. Replay cheat: resend captured wires verbatim.
  for (auto& wire : misbehavior_->replayed_messages(f)) {
    send_wire(schedule_.proxy_at(id_, f), std::move(wire));
  }

  // 6. Consistency cheat: direct sends bypassing the proxy.
  for (auto& [to, wire] : misbehavior_->direct_messages(f)) {
    if (to < schedule_.num_players()) send_wire(to, std::move(wire));
  }

  // 7. Fabricated reports (Sybil smears, collusion framing). The reporting
  //    channel is origin-signed, so the *identity* is pinned to this peer —
  //    only the content (suspect, type, vantage, rating) is forgeable.
  //    Vantage lies are the misbehavior engine's problem to catch.
  for (verify::CheatReport r : misbehavior_->fabricated_reports(f)) {
    if (!report_ || r.suspect >= schedule_.num_players() || r.suspect == id_) {
      continue;
    }
    r.verifier = id_;
    report_(r);
  }

  flush_batches();
}

void WatchmenPeer::end_frame(Frame f) {
  const bool round_ends = schedule_.round_of(f + 1) != schedule_.round_of(f);
  if (!round_ends) return;

  const std::int64_t r = schedule_.round_of(f);
  const std::int64_t next = r + 1;

  // Witness-side forwarding check: for every frame this round we held an
  // IS-level subscription to q, a frequent update should have flowed. A
  // starved stream implicates the player's proxy for the round
  // (blind-opponent drops or a malicious proxy); the player-side
  // suppression case is caught by the proxy's own rate check.
  for (PlayerId q = 0; q < schedule_.num_players(); ++q) {
    if (q == id_) continue;
    const std::size_t expected = is_held_frames_in_round_[q];
    // In direct-update mode the frequent stream no longer transits the
    // proxy, so witness starvation cannot be pinned on anyone — another
    // facet of that mode's relaxed security.
    const bool watched =
        !cfg_.direct_updates &&
        expected >= static_cast<std::size_t>(cfg_.renewal_frames) * 3 / 4;
    // Honest streams jitter (boundary crossings, lost subscribes that
    // self-heal within ~10 frames); only *heavy* starvation over a
    // near-full round carries the drop signature.
    verify::CheckResult starve_res;
    bool starving = false;
    if (watched) {
      starve_res = verify::check_rate(recv_state_in_round_[q], expected,
                                      cfg_.starve_loss_allowance, /*slop=*/8);
      starving = starve_res.suspicious() &&
                 static_cast<double>(recv_state_in_round_[q]) <
                     static_cast<double>(expected) * cfg_.starve_floor;
    }

    PendingStarve& pending = pending_starve_[q];
    if (churn_removal_round_[q] >= 0) {
      pending.active = false;  // announced departure explains the silence
    } else if (pending.active) {
      if (watched && !starving) {
        // The stream resumed under a different proxy: the starved round's
        // proxy was dropping forwards (blind opponent / malicious proxy).
        emit(schedule_.proxy_of(q, pending.round), verify::CheckType::kRate,
             verify::Vantage::kInterestWitness, f, pending.res);
        pending.active = false;
      } else if (!watched) {
        pending.active = false;  // lost interest; evidence inconclusive
      }
      // else: still silent — likely churn; hold until the notice arrives.
    } else if (starving) {
      pending.active = true;
      pending.round = r;
      pending.res = starve_res;
    }

    recv_state_in_round_[q] = 0;
    is_held_frames_in_round_[q] = 0;
  }

  for (auto it = proxied_.begin(); it != proxied_.end();) {
    const PlayerId q = it->first;
    ProxiedState& ps = it->second;

    // Dissemination-rate check over the frames this peer held q: one state
    // update expected per frame; boundary slop handled inside check_rate.
    const auto expected = static_cast<std::size_t>(
        std::max<Frame>(0, f - std::max(ps.adopted_at, schedule_.round_start(r)) + 1));
    const verify::CheckResult rate =
        verify::check_rate(ps.updates_in_round, expected, cfg_.rate_loss_allowance);
    // Statistical aimbot check over the round's precision samples.
    const verify::CheckResult aim =
        verify::check_aim(ps.aim_samples, cfg_.aim_tolerance);
    if (aim.suspicious()) {
      emit(q, verify::CheckType::kAimbot, verify::Vantage::kProxy, f, aim);
      ++ps.suspicious_in_round;
    }
    ps.aim_samples.clear();

    if (rate.suspicious()) {
      const bool silent = ps.updates_in_round == 0;
      const Frame heard = know_[q].last_heard;
      const bool silent_everywhere =
          heard < 0 || f - heard > cfg_.renewal_frames;
      verify::CheckResult rate_res = rate;
      // A silent proxy stream from a player whose broadcast traffic still
      // reaches us is normally the escape cheat. But while pool views
      // re-converge after churn (ours changed within the last couple of
      // rounds), the player may simply be reporting to whom *it* computes
      // as this round's proxy — keep the evidence below high confidence.
      if (silent && !silent_everywhere && rate_res.rating > 5.0 &&
          last_pool_change_round_ >= r - 2) {
        rate_res.rating = 5.0;
      }
      emit(q, silent ? verify::CheckType::kEscape : verify::CheckType::kRate,
           verify::Vantage::kProxy, f, rate_res);
      ++ps.suspicious_in_round;

      // Churn (§VI): a player totally silent for a full round has left (or
      // escaped). As its proxy, announce the departure; everyone removes it
      // from the proxy pool at an agreed future round. Repeated silence
      // makes later proxies re-announce, covering lost notices.
      //
      // "Silent" must mean silent in *every* role, not just the proxy
      // stream: when pools transiently diverge (a lost churn notice), a
      // peer can wrongly believe it serves q while q's updates flow to a
      // different proxy — but q's broadcast traffic still reaches us, and
      // that liveness vetoes the announce. Without this gate one lost
      // notice cascades into false removals of live players. (The escape
      // *report* above is capped, not skipped, in that situation: a player
      // hiding from its proxy while visibly playing is the escape cheat,
      // but a freshly-changed pool makes the routing ambiguous.)
      if (silent && silent_everywhere &&
          expected >= static_cast<std::size_t>(cfg_.renewal_frames) &&
          schedule_.in_pool(q) && churn_removal_round_[q] < 0) {
        const std::int64_t removal = r + protocol::kChurnRemovalDelayRounds;
        churn_removal_round_[q] = removal;
        broadcast_control(MsgType::kChurnNotice, q, encode_churn_body(removal));
      }
    }

    if (schedule_.proxy_of(q, next) != id_) {
      // Close out the pending dead-reckoning window before letting go: the
      // next guidance will arrive at the successor, never here.
      if (ps.has_guidance && !ps.path_samples.empty()) {
        verify_guidance_window(q, verify::Vantage::kProxy, ps.guidance,
                               ps.path_samples);
        ps.path_samples.clear();
      }

      // Handoff to the successor proxy: summary + predecessor's summary.
      PlayerSummary s;
      s.player = q;
      s.round = r;
      s.has_state = ps.has_state;
      s.last_state = ps.last_state;
      s.last_state_frame = ps.last_state_frame;
      s.updates_received = ps.updates_in_round;
      s.suspicious_events = ps.suspicious_in_round;
      s.has_guidance = ps.has_guidance;
      if (ps.has_guidance) s.guidance = ps.guidance;
      s.subscriptions = ps.subs.snapshot(f);

      HandoffPayload payload;
      payload.summary = s;
      if (ps.predecessor_summary) payload.predecessor = ps.predecessor_summary;

      // The handoff is a single point of failure for every subscription of
      // q. With reliable control on it is ack-tracked and retransmitted
      // with backoff (survives correlated bursts); otherwise fall back to
      // the blind send-twice (receiver-side install is idempotent either
      // way).
      const auto body = encode_handoff_body(payload);
      const PlayerId successor = schedule_.proxy_of(q, next);
      auto shared = std::make_shared<const std::vector<std::uint8_t>>(
          make_sealed(MsgType::kHandoff, q, f, body));
      ++metrics_.messages_sent;
      net_send(successor, shared);
      if (cfg_.reliable_control) {
        track_reliable(successor, id_, last_sealed_seq_, MsgType::kHandoff,
                       shared);
      } else {
        ++metrics_.messages_sent;
        // The blind duplicate exists to decorrelate loss; riding the same
        // batch datagram as the original would defeat it, so it goes bare.
        net_->send(id_, successor, shared);
      }
      my_last_summaries_[q] = std::move(s);

      GraceEntry grace;
      grace.expires = f + kGraceFrames;
      grace.state = std::move(ps);
      grace_.insert_or_assign(q, std::move(grace));
      it = proxied_.erase(it);
    } else {
      // Still the proxy next round: just reset the window counters.
      ps.updates_in_round = 0;
      ps.suspicious_in_round = 0;
      ps.adopted_at = f + 1;
      ++it;
    }
  }

  flush_batches();
}

// --------------------------------------------------------------- receive

void WatchmenPeer::on_message(const net::Envelope& env) {
  if (is_batch_wire(env.bytes())) {
    // Per-link batch container: unwrap hop-by-hop, then process each
    // sub-wire exactly as if it had arrived bare (same from / timing).
    // Truncation-safe: a datagram cut short on a real network still yields
    // its complete leading sub-wires (each signature-checked individually);
    // only the damaged tail is lost, and the damage is counted.
    const BatchPrefix bp = decode_batch_prefix(env.bytes());
    if (!bp.complete) ++metrics_.batch_rejects;
    for (const auto sub : bp.wires) handle_wire(env, sub);
  } else {
    handle_wire(env, env.bytes());
  }
  // Anything this delivery caused us to send goes out now, coalesced.
  flush_batches();
}

void WatchmenPeer::handle_wire(const net::Envelope& env,
                               std::span<const std::uint8_t> wire) {
  misbehavior_->on_received_wire(wire);

  const auto parsed = open(wire, *keys_);
  if (!parsed) {
    // Tampered, malformed, or spoofed: the signature layer catches it and
    // the network-level sender takes the blame (§IV). A failed signature is
    // cryptographic certainty, not a probabilistic sanity check — full
    // confidence regardless of the game-level vantage.
    ++metrics_.sig_rejects;
    verify::CheckResult res;
    res.deviation = 1.0;
    res.rating = 10.0;
    emit(env.from, verify::CheckType::kSignature, verify::Vantage::kProxy,
         net_->clock().frame(), res);
    return;
  }
  const MsgHeader& h = parsed->header;
  if (h.subject >= schedule_.num_players() ||
      h.origin >= schedule_.num_players()) {
    return;
  }

  if (h.type == MsgType::kHeartbeat) {
    // Pure liveness beacon: refresh the receive watchdog, nothing else. A
    // relayed heartbeat proves nothing about the origin's path to us, so
    // only the direct leg counts.
    if (env.from == h.origin) know_[h.origin].last_heard = net_->clock().frame();
    return;
  }

  if (h.type == MsgType::kAck) {
    handle_ack(env, *parsed);
    return;
  }

  // Reliable control: ack control-class messages back to the immediate
  // sender as soon as the signature clears (hop-by-hop; never ack an ack).
  maybe_ack(env, h);

  if (h.type == MsgType::kRejoinNotice) {
    handle_rejoin_notice(*parsed);
    return;
  }

  if (h.type == MsgType::kHandoff) {
    // Control-plane latency sample: frame stamps are sim-clock anchored on
    // both transport backends, so (now - stamp) measures queueing, loss and
    // retransmit delay uniformly. Retransmitted copies keep their original
    // stamp, which is exactly the tail this distribution exists to expose.
    metrics_.handoff_latency_ms.add(static_cast<double>(
        std::max<TimeMs>(0, net_->clock().now() - time_of(h.frame))));
    handle_handoff(*parsed);
    return;
  }

  if (h.type == MsgType::kChurnNotice) {
    handle_churn_notice(*parsed);
    return;
  }

  if (h.type == MsgType::kSubscriberList) {
    // Only meaningful in direct-update mode, and only from our own proxy.
    if (cfg_.direct_updates && h.subject == id_ &&
        env.from == schedule_.proxy_at(id_, net_->clock().frame())) {
      try {
        // Full lists replace; diffs apply against the current list, and a
        // baseline-hash miss (nullopt) keeps the old list until the proxy's
        // periodic full refresh.
        auto updated = decode_subscriber_list_body(parsed->body, direct_targets_);
        if (updated) {
          direct_targets_ = std::move(*updated);
        } else {
          ++metrics_.sub_diff_misses;
        }
      } catch (const DecodeError&) {
      }
    }
    return;
  }

  if (cfg_.direct_updates && env.from == h.origin &&
      h.type == MsgType::kStateUpdate && !proxied_.contains(h.origin) &&
      !grace_.contains(h.origin)) {
    // 1-hop direct update from a player whose stream we subscribed to.
    handle_as_player(env, *parsed, /*direct_path=*/true);
    return;
  }

  if (h.type == MsgType::kSubscribe) {
    metrics_.subscribe_latency_ms.add(static_cast<double>(
        std::max<TimeMs>(0, net_->clock().now() - time_of(h.frame))));
    if (env.from == h.origin) {
      // First hop: we are (supposed to be) the subscriber's proxy.
      proxy_handle_subscribe_first_hop(wire, *parsed);
    } else {
      // Second hop: we are (supposed to be) the target's proxy.
      const auto it = proxied_.find(h.subject);
      if (it != proxied_.end()) {
        proxy_handle_subscribe_second_hop(*parsed, it->second);
      } else {
        // Round-boundary races: the subscription chased a proxy that just
        // handed off. Everyone can compute the current proxy, so either
        // adopt early (we are it, begin_frame just hasn't run) or pass the
        // signed wire along to whoever is.
        const PlayerId cur = schedule_.proxy_at(h.subject, net_->clock().frame());
        if (cur == id_) {
          ProxiedState ps(cfg_.renewal_frames);
          ps.adopted_at = net_->clock().frame();
          auto [slot, _] = proxied_.emplace(h.subject, std::move(ps));
          proxy_handle_subscribe_second_hop(*parsed, slot->second);
        } else if (env.from != cur) {  // no ping-pong
          ++metrics_.forwarded;
          net_send(cur, std::make_shared<const std::vector<std::uint8_t>>(
                            wire.begin(), wire.end()));
        }
      }
    }
    return;
  }

  if (env.from == h.origin) {
    // Direct leg: player -> its proxy.
    handle_as_proxy(env, wire, *parsed);
  } else {
    // Forwarded leg: proxy -> subscriber.
    handle_as_player(env, *parsed);
  }
}

bool WatchmenPeer::replay_guard(RemoteKnowledge& k, const MsgHeader& h,
                                PlayerId sender) {
  // Accept mild reordering (a couple of frames); reject messages that are
  // older than what we have already accepted from this origin. The blame
  // goes to whoever *sent* the stale message — the origin's signature is
  // genuine, it is the replayer that is cheating.
  if (h.frame > k.newest_frame ||
      (h.frame == k.newest_frame && h.seq > k.newest_seq)) {
    k.newest_frame = h.frame;
    k.newest_seq = h.seq;
    return true;
  }
  constexpr Frame kReorderWindow = 2;
  if (h.frame + kReorderWindow >= k.newest_frame) return true;

  ++metrics_.dropped_replays;
  verify::CheckResult res;
  res.deviation = static_cast<double>(k.newest_frame - h.frame);
  res.rating = verify::rating_from_deviation(res.deviation, 40.0);
  emit(sender, verify::CheckType::kConsistency, vantage_towards(sender),
       net_->clock().frame(), res);
  return false;
}

void WatchmenPeer::handle_as_proxy(const net::Envelope& env,
                                   std::span<const std::uint8_t> wire,
                                   const ParsedMessage& msg) {
  const MsgHeader& h = msg.header;
  auto it = proxied_.find(h.origin);
  if (it == proxied_.end() &&
      (cfg_.proxy_failover_silence > 0 || cfg_.liveness_watchdog) &&
      schedule_.proxy_of(h.origin, round_) != id_ &&
      schedule_.proxy_of(h.origin, round_ + 1) == id_ &&
      !grace_.contains(h.origin)) {
    // Emergency proxy failover: the origin routed to us — its
    // successor-of-round — because its proxy went silent from its vantage.
    // If the proxy looks dead from here too, adopt early, seeded with the
    // summary we already hold from a previous tenure so the two-round
    // follow-up chain survives. If the proxy looks alive from here, drop
    // silently: over-eager routing is a loss symptom, not a cheat.
    const PlayerId cur = schedule_.proxy_of(h.origin, round_);
    if (!proxy_silent(cur)) return;
    ProxiedState ps(cfg_.renewal_frames);
    ps.adopted_at = frame_;
    if (const auto s = my_last_summaries_.find(h.origin);
        s != my_last_summaries_.end()) {
      ps.subs.install(s->second.subscriptions);
      if (s->second.has_state) {
        ps.last_state = s->second.last_state;
        ps.last_state_frame = s->second.last_state_frame;
        ps.has_state = true;
      }
      ps.predecessor_summary = s->second;
    }
    ++metrics_.failover_adoptions;
    it = proxied_.emplace(h.origin, std::move(ps)).first;
  }
  if (it == proxied_.end()) {
    // Grace window: keep serving players just handed off, don't verify.
    const auto git = grace_.find(h.origin);
    if (git != grace_.end()) {
      const Frame now = net_->clock().frame();
      if (h.type == MsgType::kStateUpdate && !cfg_.direct_updates) {
        forward_to(git->second.state.subs.subscribers(
                       interest::SetKind::kInterest, now),
                   wire, h.origin);
      } else if (h.type == MsgType::kGuidance) {
        forward_to(git->second.state.subs.subscribers(
                       interest::SetKind::kVision, now),
                   wire, h.origin);
      }
      return;
    }
    // Not our player at all: the sender bypassed the proxy scheme (direct
    // send / consistency cheat). The schedule is verifiable shared
    // knowledge, so this violation is certain, not probabilistic — except
    // briefly around churn pool changes, when schedules may diverge.
    if (!pool_transition_grace()) {
      verify::CheckResult res;
      res.deviation = 1.0;
      res.rating = 10.0;
      emit(env.from, verify::CheckType::kConsistency, verify::Vantage::kProxy,
           h.frame, res);
    }
    return;
  }

  ProxiedState& ps = it->second;
  if (!replay_guard(know_[h.origin], h, env.from)) return;

  // Time cheat: stamped long before it reached us.
  const Frame now = net_->clock().frame();
  const Frame lateness = now - h.frame;
  if (lateness > cfg_.max_update_lateness) {
    verify::CheckResult res;
    res.deviation = static_cast<double>(lateness - cfg_.max_update_lateness);
    // Saturates at twice the allowance: consistently stamping updates
    // hundreds of ms in the past is the look-ahead cheat.
    res.rating = verify::rating_from_deviation(
        res.deviation, static_cast<double>(cfg_.max_update_lateness));
    emit(h.origin, verify::CheckType::kConsistency, verify::Vantage::kProxy,
         h.frame, res);
    ++ps.suspicious_in_round;
  }

  switch (h.type) {
    case MsgType::kStateUpdate:
    case MsgType::kPositionUpdate:
    case MsgType::kGuidance:
      proxy_handle_update(env, wire, msg, ps);
      break;
    case MsgType::kKillClaim:
      proxy_handle_kill_claim(wire, msg, ps);
      break;
    default:
      break;
  }
}

void WatchmenPeer::proxy_handle_update(const net::Envelope& env,
                                       std::span<const std::uint8_t> wire,
                                       const ParsedMessage& msg,
                                       ProxiedState& ps) {
  const MsgHeader& h = msg.header;
  const Frame now = net_->clock().frame();

  switch (h.type) {
    case MsgType::kStateUpdate: {
      game::AvatarState s;
      bool decodable = true;
      try {
        const StateBodyView v = parse_state_body(msg.body);
        if (v.is_anchored) {
          // Ack-anchored delta: baseline is whatever we decoded at the
          // stamped frame — any acked state, not just the last keyframe.
          const Frame base = h.frame - static_cast<Frame>(v.baseline_age);
          if (const game::AvatarState* b = ps.decoded.get(base)) {
            s = decode_state_body_anchored(msg.body, *b, base);
            ++metrics_.anchored_decodes;
          } else {
            ++metrics_.baseline_mismatches;
            decodable = false;
          }
        } else if (v.is_delta) {
          // Legacy deltas decode against the sender's last keyframe only.
          if (h.frame - static_cast<Frame>(v.baseline_age) != ps.keyframe_frame) {
            ++metrics_.baseline_mismatches;
            decodable = false;
          } else {
            s = interest::decode_delta(ps.keyframe_state, v.payload);
          }
        } else {
          s = interest::decode_full(v.payload);
          ps.keyframe_state = s;
          ps.keyframe_frame = h.frame;
          ++metrics_.keyframes_decoded;
        }
      } catch (const interest::BaselineMismatch&) {
        // The payload's own baseline stamp disagreed with the frame math —
        // the explicit error path a stale/corrupt anchor now takes.
        ++metrics_.baseline_mismatches;
        break;
      } catch (const DecodeError&) {
        break;
      }
      if (!decodable) {
        // The message still arrived on time — it counts for rate policing —
        // and subscribers with an intact chain can still use the forward.
        ++ps.updates_in_round;
        if (!cfg_.direct_updates) {
          forward_to(ps.subs.subscribers(interest::SetKind::kInterest, now),
                     wire, h.origin);
        }
        break;
      }
      if (ps.has_state && ps.last_state.alive && !s.alive) {
        know_[h.origin].last_death = h.frame;  // alive-flag transition
        // Redundant obituary: broadcast the (signed) dead-state update so
        // every verifier learns of the death even if the killer's claim was
        // lost — a respawn teleport must never look like a speed hack.
        std::vector<PlayerId> all;
        all.reserve(schedule_.num_players());
        for (PlayerId w = 0; w < schedule_.num_players(); ++w) {
          if (w != id_ && w != h.origin) all.push_back(w);
        }
        forward_to(all, wire, h.origin);
      }
      // Position / physics check against the previous verified update;
      // suppressed across a known death-respawn window.
      if (ps.has_state && h.frame > ps.last_state_frame &&
          ps.last_state.alive && s.alive &&
          !in_death_window(h.origin, ps.last_state_frame)) {
        const verify::CheckResult res = verify::check_position(
            ps.last_state.pos, ps.last_state_frame, s.pos, h.frame, map_);
        if (res.suspicious()) {
          emit(h.origin, verify::CheckType::kPosition, verify::Vantage::kProxy,
               h.frame, res);
          ++ps.suspicious_in_round;
        }
      }
      maybe_close_guidance(h.origin, verify::Vantage::kProxy, h.frame,
                           ps.has_guidance, ps.guidance, ps.path_samples);
      // Aim analysis (Table I "aimbots: detection by proxy (statistical
      // analysis)"). Two signals:
      //  1. Turn rate: published aim must respect the engine's angular
      //     speed limit — instant snaps are mechanically impossible.
      if (ps.has_state && s.alive && ps.last_state.alive &&
          !in_death_window(h.origin, ps.last_state_frame)) {
        const auto frames =
            std::max<Frame>(1, h.frame - ps.last_state_frame);
        if (frames <= 3) {
          const double allowed = game::kDefaultPhysics.max_angular_speed *
                                     game::kDefaultPhysics.dt *
                                     static_cast<double>(frames) +
                                 0.02;
          const double turned = std::fabs(wrap_angle(s.yaw - ps.last_state.yaw));
          if (turned > allowed) {
            verify::CheckResult res;
            res.deviation = turned - allowed;
            res.rating = verify::rating_from_deviation(res.deviation, 1.0);
            emit(h.origin, verify::CheckType::kAimbot, verify::Vantage::kProxy,
                 h.frame, res);
            ++ps.suspicious_in_round;
          }
        }
      }
      //  2. Statistical precision: sample the angular error towards the
      //     best-aligned nearby enemy whenever our knowledge of that enemy
      //     is fresh; inhumanly small per-round medians flag at round end.
      if (s.alive) {
        double best = 10.0;
        for (PlayerId q = 0; q < schedule_.num_players(); ++q) {
          if (q == h.origin || q == id_) continue;
          const RemoteKnowledge& ek = know_[q];
          if (ek.pos_frame < 0 || h.frame - ek.pos_frame > 1) continue;
          const Vec3 to_enemy = ek.pos + Vec3{0, 0, 56} - s.eye();
          const double d = to_enemy.norm();
          if (d < 200.0 || d > 1500.0) continue;
          best = std::min(best, angle_between(s.aim_dir(), to_enemy));
        }
        if (best < 1.0) ps.aim_samples.push_back(best);
      }

      if (ps.has_guidance) ps.path_samples.emplace_back(h.frame, s.pos);
      ps.last_state = s;
      ps.last_state_frame = h.frame;
      ps.has_state = true;
      ++ps.updates_in_round;
      // The direct stream also satisfies this peer's own witness-side
      // forwarding expectation (it never receives its own forwards).
      if (h.origin < recv_state_in_round_.size()) {
        ++recv_state_in_round_[h.origin];
      }

      if (cfg_.ack_anchored) {
        // Every decoded state is a candidate anchor; ack the stream at the
        // configured cadence so the sender's anchor keeps advancing.
        ps.decoded.put(h.frame, s);
        if (h.frame - ps.last_state_ack >= cfg_.state_ack_period) {
          AckBody a;
          a.acked_origin = h.origin;
          a.acked_seq = h.seq;
          a.acked_type = MsgType::kStateUpdate;
          ++metrics_.state_acks_sent;
          send_wire(env.from, make_sealed(MsgType::kAck, h.origin, now,
                                          encode_ack_body(a)));
          ps.last_state_ack = h.frame;
        }
      }

      // The proxy holds complete information about its player.
      RemoteKnowledge& k = know_[h.origin];
      checkpoint_pos(k, s.pos, h.frame);
      k.state = s;
      k.state_frame = h.frame;
      k.has_state = true;
      k.pos = s.pos;
      k.pos_frame = h.frame;
      k.last_heard = now;

      // In direct-update mode the player pushed to its IS subscribers
      // itself; the proxy copy exists for verification only.
      if (!cfg_.direct_updates) {
        forward_to(ps.subs.subscribers(interest::SetKind::kInterest, now),
                   wire, h.origin);
      }
      break;
    }
    case MsgType::kGuidance: {
      const interest::Guidance g = decode_guidance_body(msg.body);
      if (ps.has_guidance && !ps.path_samples.empty()) {
        verify_guidance_window(h.origin, verify::Vantage::kProxy, ps.guidance,
                               ps.path_samples);
      }
      ps.guidance = g;
      ps.has_guidance = true;
      ps.path_samples.clear();
      // Keep the player-side knowledge consistent: a new guidance anchor
      // invalidates any path samples collected against the previous one.
      RemoteKnowledge& k = know_[h.origin];
      k.guidance = g;
      k.has_guidance = true;
      k.path_samples.clear();
      k.path_samples.emplace_back(g.frame, g.pos);

      forward_to(ps.subs.subscribers(interest::SetKind::kVision, now), wire,
                 h.origin);
      break;
    }
    case MsgType::kPositionUpdate: {
      // Default infrequent updates go to everyone without a richer
      // subscription — no explicit subscription needed (paper §III-A).
      std::vector<PlayerId> others;
      for (PlayerId q = 0; q < schedule_.num_players(); ++q) {
        if (q == h.origin || q == id_) continue;
        if (ps.subs.level_of(q, now) == interest::SetKind::kOther) {
          others.push_back(q);
        }
      }
      // Budgeted fan-out: this is the only term that grows O(n) per player,
      // so at scale the proxy forwards each beacon to a rotating window of
      // the Other set instead of all of it. Receivers refresh every
      // ceil(|others|/budget) beacons; the position checks' dead-reckoning
      // slack already scales with update age, so verification keeps working
      // on the longer interval.
      if (cfg_.other_update_budget > 0 &&
          others.size() > cfg_.other_update_budget) {
        std::vector<PlayerId> window;
        window.reserve(cfg_.other_update_budget);
        ps.other_cursor %= others.size();
        for (std::uint32_t i = 0; i < cfg_.other_update_budget; ++i) {
          window.push_back(others[(ps.other_cursor + i) % others.size()]);
        }
        ps.other_cursor += cfg_.other_update_budget;
        forward_to(window, wire, h.origin);
      } else {
        forward_to(others, wire, h.origin);
      }
      break;
    }
    default:
      break;
  }
}

void WatchmenPeer::proxy_handle_subscribe_first_hop(
    std::span<const std::uint8_t> wire, const ParsedMessage& msg) {
  const MsgHeader& h = msg.header;
  ProxiedState* psp = nullptr;
  if (const auto it = proxied_.find(h.origin); it != proxied_.end()) {
    psp = &it->second;
  } else if (const auto git = grace_.find(h.origin); git != grace_.end()) {
    psp = &git->second.state;  // boundary-crossing: still verify + forward
  }
  if (!psp) return;  // not our player at all
  ProxiedState& ps = *psp;

  const interest::SetKind kind = decode_subscribe_body(msg.body);
  const PlayerId target = h.subject;
  if (target >= schedule_.num_players() || target == h.origin) return;

  // Verify the subscription is justified from the accurate state we hold
  // about the subscriber and our best knowledge of the target. Respawn
  // teleports of either party make stale comparisons meaningless, so skip
  // inside their death windows.
  if (ps.has_state && !in_death_window(h.origin, h.frame) &&
      !in_death_window(target, h.frame)) {
    const RemoteKnowledge& tk = know_[target];
    const Vec3 target_pos = tk.pos_frame >= 0 ? tk.pos : Vec3{1e9, 1e9, 1e9};
    if (tk.pos_frame >= 0) {
      // Cone deviation is essentially horizontal; budget the target's drift
      // since our last position sample accordingly.
      const Frame pos_age = std::max<Frame>(1, frame_ - tk.pos_frame);
      const double slack =
          64.0 + game::max_legal_horizontal(static_cast<int>(pos_age));
      // The subscription refers to the subscriber's cone at h.frame; our
      // state snapshot may be a frame or two off, and aim turns fast —
      // widen the cone by the legal turn budget for that gap, plus the
      // IS stickiness allowance honest subscribers legitimately use
      // (compute_sets keeps current IS members in a slightly relaxed cone).
      interest::VisionConfig vision = cfg_.interest.vision;
      const Frame aim_gap = std::llabs(h.frame - ps.last_state_frame);
      vision.half_angle +=
          0.16 + game::kDefaultPhysics.max_angular_speed *
                     game::kDefaultPhysics.dt * static_cast<double>(aim_gap);
      vision.radius *= 1.12;
      if (kind == interest::SetKind::kVision ||
          kind == interest::SetKind::kInterest) {
        // A high-rated verdict reached from a stale target sample is
        // parked, not emitted: the target may have died and respawned
        // inside the staleness gap (obituary lost to the network), making
        // an honest subscription to its *actual* position look like a
        // maphack. flush_pending_subs re-judges the cone once a sample
        // covering the subscription frame arrives; a fresh-sample verdict
        // emits immediately — no unseen teleport can explain it away.
        const auto emit_sub = [&](verify::CheckType type,
                                  verify::CheckResult res) {
          ++ps.suspicious_in_round;
          if (res.rating > 5.0 && tk.pos_frame < h.frame) {
            pending_subs_.push_back({h.origin, target, type, h.frame,
                                     h.frame + 2 * kDeathWindowFrames, res,
                                     ps.last_state, vision, slack});
            return;
          }
          emit(h.origin, type, verify::Vantage::kProxy, h.frame, res);
        };
        const verify::CheckResult vs = verify::check_vs_subscription(
            ps.last_state, target_pos, vision, slack);
        if (vs.suspicious()) {
          emit_sub(kind == interest::SetKind::kInterest
                       ? verify::CheckType::kSubscriptionIS
                       : verify::CheckType::kSubscriptionVS,
                   vs);
        } else if (kind == interest::SetKind::kInterest) {
          // Inside the cone: check the attention rank as well.
          auto snapshot = knowledge_snapshot();
          snapshot[h.origin] = ps.last_state;
          interest::InterestConfig icfg = cfg_.interest;
          icfg.vision = vision;
          const verify::CheckResult isr = verify::check_is_subscription(
              h.origin, target, snapshot, *map_, frame_, nullptr, icfg, slack);
          if (isr.suspicious()) {
            emit_sub(verify::CheckType::kSubscriptionIS, isr);
          }
        }
      }
    }
  }

  // Forward the original signed wire (verified or not — detection, not
  // prevention) to the target's proxy; the target never learns who
  // subscribed (§IV "Secured Subscriptions").
  ++metrics_.forwarded;
  const PlayerId target_proxy = schedule_.proxy_at(target, frame_);
  auto shared = std::make_shared<const std::vector<std::uint8_t>>(
      wire.begin(), wire.end());
  net_send(target_proxy, shared);
  if (cfg_.reliable_control && target_proxy != id_) {
    // Second hop of the subscribe chain: track under the *origin's*
    // header, which is what the target proxy will ack. Serving both ends
    // ourselves is a loopback delivery — guaranteed, and never acked
    // (receivers don't ack their own messages), so don't track it.
    track_reliable(target_proxy, h.origin, h.seq, MsgType::kSubscribe, shared);
  }
}

void WatchmenPeer::proxy_handle_subscribe_second_hop(const ParsedMessage& msg,
                                                     ProxiedState& ps) {
  const MsgHeader& h = msg.header;
  const interest::SetKind kind = decode_subscribe_body(msg.body);
  if (kind == interest::SetKind::kOther) {
    ps.subs.unsubscribe(h.origin);
  } else {
    ps.subs.subscribe(h.origin, kind, net_->clock().frame());
  }
}

void WatchmenPeer::proxy_handle_kill_claim(std::span<const std::uint8_t> wire,
                                           const ParsedMessage& msg,
                                           ProxiedState& ps) {
  const MsgHeader& h = msg.header;
  const KillClaim claim = decode_kill_body(msg.body);
  if (claim.victim >= schedule_.num_players()) return;

  verify::KillClaimEvidence ev;
  ev.weapon = claim.weapon;
  ev.claimed_distance = claim.distance;
  ev.shooter_pos = ps.has_state ? ps.last_state.pos : Vec3{};
  ev.shooter_pos_age =
      ps.has_state ? std::max<Frame>(0, frame_ - ps.last_state_frame) : 200;
  if (in_death_window(h.origin, h.frame)) ev.shooter_pos_age = 200;
  const RemoteKnowledge& vk = know_[claim.victim];
  ev.victim_pos = vk.pos_frame >= 0 ? vk.pos : claim.victim_pos;
  ev.victim_pos_age = vk.pos_frame >= 0 ? frame_ - vk.pos_frame : 0;
  if (in_death_window(claim.victim, h.frame)) {
    // The victim respawned recently; our position knowledge may predate the
    // teleport — treat it as arbitrarily stale so the distance component
    // does not fire on honest claims.
    ev.victim_pos_age = 200;
  }
  // One trigger pull can kill several players at once (rocket splash,
  // shotgun spread): same-frame claims are legal up to a splash-plausible
  // count; the refire bound applies between *distinct* shots.
  if (h.frame == ps.last_kill_claim) {
    ++ps.kill_claims_same_frame;
    ev.frames_since_last_fire = ps.kill_claims_same_frame <= 5 ? 1000 : 0;
  } else {
    ev.frames_since_last_fire = h.frame - ps.last_kill_claim;
    ps.kill_claims_same_frame = 1;
  }
  ps.last_kill_claim = h.frame;
  ev.frames_victim_in_shooter_is = 1000;  // proxies don't track IS residency
  ev.line_of_sight =
      !ps.has_state ||
      los_with_slack(ps.last_state.eye(), claim.victim_pos + Vec3{0, 0, 56});
  ev.shooter_ammo = ps.has_state ? ps.last_state.ammo + 1 : 1;

  const verify::CheckResult res = verify::check_kill(ev);
  if (res.suspicious()) {
    emit(h.origin, verify::CheckType::kKill, verify::Vantage::kProxy, h.frame,
         res);
    ++ps.suspicious_in_round;
  }

  // Obituary broadcast: every player learns about the death (scoreboard /
  // kill feed in the real game). Witnesses also re-verify the claim, and
  // everyone can legitimize the victim's upcoming respawn teleport.
  know_[claim.victim].last_death = h.frame;
  std::vector<PlayerId> all;
  all.reserve(schedule_.num_players());
  for (PlayerId q = 0; q < schedule_.num_players(); ++q) {
    if (q != id_ && q != h.origin) all.push_back(q);
  }
  forward_to(all, wire, h.origin);
}

void WatchmenPeer::handle_churn_notice(const ParsedMessage& msg) {
  const MsgHeader& h = msg.header;
  if (h.subject >= schedule_.num_players() || h.subject == id_) return;
  if (!schedule_.in_pool(h.subject)) return;  // already removed

  // Only the silent player's proxy for the notice round may announce —
  // unless we can corroborate the claim ourselves. Silence is locally
  // verifiable: if we have heard nothing from the subject for a full
  // renewal period either, any announcer is acceptable. This is what lets
  // re-announced notices heal pool divergence (after a lost notice the
  // laggard's idea of "the proxy" differs from everyone else's, so the
  // strict origin check would reject exactly the notices it needs).
  const std::int64_t notice_round = schedule_.round_of(h.frame);
  const Frame heard = know_[h.subject].last_heard;
  const bool silent_here = heard < 0 || frame_ - heard > cfg_.renewal_frames;
  if (!silent_here && schedule_.proxy_of(h.subject, notice_round) != h.origin) {
    // Around pool transitions (and partition heals) peers' pools — and so
    // their idea of "the proxy" — may legitimately diverge; don't blame.
    if (!pool_transition_grace()) {
      verify::CheckResult res;
      res.deviation = 1.0;
      res.rating = 8.0;
      emit(h.origin, verify::CheckType::kConsistency, verify::Vantage::kProxy,
           h.frame, res);
    }
    return;
  }

  std::int64_t removal = 0;
  try {
    removal = decode_churn_body(msg.body);
  } catch (const DecodeError&) {
    return;
  }
  if (removal < notice_round + 1) return;  // cannot rewrite the past
  if (churn_removal_round_[h.subject] < 0 ||
      removal < churn_removal_round_[h.subject]) {
    churn_removal_round_[h.subject] = removal;
  }
}

void WatchmenPeer::handle_rejoin_notice(const ParsedMessage& msg) {
  const MsgHeader& h = msg.header;
  if (h.subject >= schedule_.num_players()) return;

  // Accept from the subject itself (crash rejoin), from the subject's
  // current proxy (post-heal pool reconciliation), or from anyone when we
  // can corroborate the claim — we have heard the subject ourselves within
  // the last renewal period, so it is demonstrably alive from our vantage.
  // Anything else is ignored *without* blame: a restore only ever adds a
  // serving node, and pools are exactly what diverges during the faults
  // this message heals.
  const std::int64_t notice_round = schedule_.round_of(h.frame);
  const bool from_subject = h.origin == h.subject;
  const bool from_proxy =
      schedule_.proxy_of(h.subject, notice_round) == h.origin;
  const Frame heard = know_[h.subject].last_heard;
  const bool alive_here = heard >= 0 && frame_ - heard <= cfg_.renewal_frames;
  if (!from_subject && !from_proxy && !alive_here) return;

  std::int64_t restore = 0;
  try {
    restore = decode_rejoin_body(msg.body);
  } catch (const DecodeError&) {
    return;
  }
  if (restore < notice_round + 1) return;  // cannot rewrite the past
  if (churn_restore_round_[h.subject] < 0 ||
      restore < churn_restore_round_[h.subject]) {
    churn_restore_round_[h.subject] = restore;
  }
}

void WatchmenPeer::broadcast_control(MsgType type, PlayerId subject,
                                     std::span<const std::uint8_t> body) {
  auto wire = make_sealed(type, subject, frame_, body);
  auto shared =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(wire));
  for (PlayerId w = 0; w < schedule_.num_players(); ++w) {
    if (w == id_ || w == subject) continue;
    ++metrics_.messages_sent;
    net_send(w, shared);
    if (cfg_.reliable_control) {
      track_reliable(w, id_, last_sealed_seq_, type, shared);
    }
  }
}

void WatchmenPeer::rejoin(Frame f) {
  const Frame last_alive = frame_;
  frame_ = f;
  round_ = schedule_.round_of(f);

  // Proxy duties lapsed silently while we were down; shed them all.
  proxied_.clear();
  grace_.clear();
  outbox_.clear();
  reliable_.clear();
  direct_targets_.clear();
  batch_buf_.clear();
  // Everyone looks silent to a node that just woke up; regrade from scratch
  // instead of carrying Dead verdicts into the new tenure.
  watchdog_state_.clear();
  // The pre-crash anchor refers to a proxy tenure that has lapsed; restart
  // the anchored chain from the next keyframe.
  acked_frame_ = -1;

  // A crash spanning a full round means the churn agreement has removed us
  // from everyone else's pool; mirror that locally so our assignment math
  // matches theirs until the agreed restore round, and announce re-entry.
  // (A node that was configured out of the pool — weight 0 — was never
  // removed by churn and announces nothing.)
  if (f - last_alive > cfg_.renewal_frames && schedule_.in_pool(id_)) {
    schedule_.remove_from_pool(id_);
    churn_removal_round_[id_] = round_;
    last_pool_change_round_ = round_;
    const std::int64_t restore = round_ + protocol::kRejoinRestoreDelayRounds;
    churn_restore_round_[id_] = restore;
    broadcast_control(MsgType::kRejoinNotice, id_, encode_rejoin_body(restore));
  }

  // Stale stream beliefs from before the crash would read as starvation or
  // proxy drops; reset the per-round accounting and force re-subscribes.
  for (PlayerId q = 0; q < schedule_.num_players(); ++q) {
    recv_state_in_round_[q] = 0;
    is_held_frames_in_round_[q] = 0;
    pending_starve_[q].active = false;
  }
  sent_level_.clear();
  sent_level_frame_.clear();

  flush_batches();
}

bool WatchmenPeer::pool_transition_grace() const {
  // While peers apply churn removals, their schedules may briefly diverge;
  // protocol-violation reports are suppressed for two rounds around any
  // pool change.
  return round_ - last_pool_change_round_ <=
         protocol::kPoolTransitionGraceRounds;
}

void WatchmenPeer::handle_handoff(const ParsedMessage& msg) {
  const MsgHeader& h = msg.header;

  // Only the proxy of the round the handoff was *stamped* in may hand off.
  // h.frame sits under the origin's signature, so validating against the
  // stamped round (instead of "our previous round") stays correct for
  // retransmits and delayed copies that arrive rounds later.
  const std::int64_t stamp_round = schedule_.round_of(h.frame);
  if (schedule_.proxy_of(h.subject, stamp_round) != h.origin) {
    if (!pool_transition_grace()) {
      verify::CheckResult res;
      res.deviation = 1.0;
      res.rating = 8.0;
      emit(h.origin, verify::CheckType::kConsistency, verify::Vantage::kProxy,
           h.frame, res);
    }
    return;
  }

  auto it = proxied_.find(h.subject);
  if (it == proxied_.end()) {
    // Round-boundary race: the handoff outran our begin_frame adoption (it
    // is sent in the last instants of the old round, so on a fast link it
    // lands before the new round's first begin_frame). If we are the
    // incoming proxy, adopt now; anyone else — including us when a stale
    // retransmit outlives our tenure — ignores it.
    const std::int64_t now_round = schedule_.round_of(net_->clock().frame());
    if (stamp_round + protocol::kHandoffStaleRounds < now_round) return;
    if (schedule_.proxy_of(h.subject, stamp_round + 1) != id_) return;
    ProxiedState ps(cfg_.renewal_frames);
    ps.adopted_at = net_->clock().frame();
    it = proxied_.emplace(h.subject, std::move(ps)).first;
  }
  ProxiedState& ps = it->second;

  HandoffPayload payload;
  try {
    payload = decode_handoff_body(msg.body);
  } catch (const DecodeError&) {
    return;
  }
  if (payload.summary.player != h.subject) return;

  ps.subs.install(payload.summary.subscriptions);
  if (payload.summary.has_state && !ps.has_state) {
    ps.last_state = payload.summary.last_state;
    ps.last_state_frame = payload.summary.last_state_frame;
    ps.has_state = true;
  }
  if (payload.summary.has_guidance && !ps.has_guidance) {
    // Continue the dead-reckoning window that spans the renewal: path
    // samples collected from here on are still compared against the
    // predecessor-era guidance.
    ps.guidance = payload.summary.guidance;
    ps.has_guidance = true;
  }
  ps.predecessor_summary = payload.summary;
}

void WatchmenPeer::handle_as_player(const net::Envelope& env,
                                    const ParsedMessage& msg,
                                    bool direct_path) {
  const MsgHeader& h = msg.header;
  const Frame now = net_->clock().frame();

  // The forwarder must be the origin's proxy for the message's round (with
  // one-round grace for boundary-crossing messages). Anything else is a
  // consistency violation: either a direct send by the origin (caught in
  // on_message by the from==origin path ending at a non-proxy) or a replay
  // by a third party. Direct-update mode deliberately waives this for
  // 1-hop state updates — part of its "lower security" trade.
  const std::int64_t msg_round = schedule_.round_of(h.frame);
  const bool from_valid_proxy =
      direct_path ||
      env.from == schedule_.proxy_of(h.origin, msg_round) ||
      env.from == schedule_.proxy_of(h.origin, msg_round + 1) ||
      (msg_round > 0 && env.from == schedule_.proxy_of(h.origin, msg_round - 1));
  if (!from_valid_proxy) {
    // Forward from a node that is not the origin's proxy for any plausible
    // round: a certain protocol violation by the sender (outside churn
    // transitions, when peers' pools may briefly diverge).
    if (!pool_transition_grace()) {
      verify::CheckResult res;
      res.deviation = 1.0;
      res.rating = 10.0;
      emit(env.from, verify::CheckType::kConsistency, verify::Vantage::kProxy,
           h.frame, res);
      return;
    }
  }

  RemoteKnowledge& k = know_[h.origin];
  if (!replay_guard(k, h, env.from)) return;

  const verify::Vantage vantage = vantage_towards(h.origin);

  switch (h.type) {
    case MsgType::kStateUpdate: {
      game::AvatarState s;
      try {
        const StateBodyView v = parse_state_body(msg.body);
        if (v.is_anchored) {
          // Ack-anchored delta: the baseline is the (proxy-acked) state at
          // the stamped frame; any frame we decoded can serve.
          const Frame base = h.frame - static_cast<Frame>(v.baseline_age);
          const game::AvatarState* b = k.decoded.get(base);
          if (!b) {
            ++metrics_.baseline_mismatches;
            // The arrival still counts for the witness-side forwarding
            // expectation; the next anchored delta likely recovers us.
            if (h.origin < recv_state_in_round_.size()) {
              ++recv_state_in_round_[h.origin];
            }
            break;
          }
          s = decode_state_body_anchored(msg.body, *b, base);
          ++metrics_.anchored_decodes;
        } else if (v.is_delta) {
          if (h.frame - static_cast<Frame>(v.baseline_age) != k.keyframe_frame) {
            // Out of sync until the next keyframe; the arrival still counts
            // for the witness-side forwarding expectation.
            ++metrics_.baseline_mismatches;
            if (h.origin < recv_state_in_round_.size()) {
              ++recv_state_in_round_[h.origin];
            }
            break;
          }
          s = interest::decode_delta(k.keyframe_state, v.payload);
        } else {
          s = interest::decode_full(v.payload);
          k.keyframe_state = s;
          k.keyframe_frame = h.frame;
          ++metrics_.keyframes_decoded;
        }
      } catch (const interest::BaselineMismatch&) {
        ++metrics_.baseline_mismatches;
        break;
      } catch (const DecodeError&) {
        break;
      }
      if (cfg_.ack_anchored) k.decoded.put(h.frame, s);
      metrics_.update_age_frames.add(static_cast<double>(now - h.frame));
      ++metrics_.updates_received;

      if (h.origin < recv_state_in_round_.size()) {
        ++recv_state_in_round_[h.origin];
      }
      if ((k.has_state && k.state.alive && !s.alive) ||
          (!s.alive && h.frame > k.last_death + kDeathWindowFrames)) {
        k.last_death = h.frame;  // transition, or first news of this death
      }
      if (k.pos_frame >= 0 && h.frame > k.pos_frame &&
          (!k.has_state || k.state.alive) && s.alive &&
          !in_death_window(h.origin, k.pos_frame)) {
        const verify::CheckResult res =
            verify::check_position(k.pos, k.pos_frame, s.pos, h.frame, map_);
        if (res.suspicious()) {
          emit(h.origin, verify::CheckType::kPosition, vantage, h.frame, res);
        }
      }
      maybe_close_guidance(h.origin, vantage, h.frame, k.has_guidance,
                           k.guidance, k.path_samples);
      if (k.has_guidance) k.path_samples.emplace_back(h.frame, s.pos);
      checkpoint_pos(k, s.pos, h.frame);
      k.state = s;
      k.state_frame = h.frame;
      k.has_state = true;
      k.pos = s.pos;
      k.pos_frame = h.frame;
      k.last_heard = now;
      break;
    }
    case MsgType::kGuidance: {
      const interest::Guidance g = decode_guidance_body(msg.body);
      metrics_.update_age_frames.add(static_cast<double>(now - h.frame));
      ++metrics_.updates_received;

      if (k.has_guidance && !k.path_samples.empty()) {
        verify_guidance_window(h.origin, vantage, k.guidance, k.path_samples);
      }
      k.guidance = g;
      k.has_guidance = true;
      k.path_samples.clear();
      k.path_samples.emplace_back(g.frame, g.pos);
      checkpoint_pos(k, g.pos, h.frame);
      k.pos = g.pos;
      k.pos_frame = h.frame;
      k.last_heard = now;
      break;
    }
    case MsgType::kPositionUpdate: {
      const Vec3 pos = decode_position_body(msg.body);
      metrics_.update_age_frames.add(static_cast<double>(now - h.frame));
      ++metrics_.updates_received;

      if (k.pos_frame >= 0 && h.frame > k.pos_frame &&
          !in_death_window(h.origin, k.pos_frame)) {
        const verify::CheckResult res =
            verify::check_position(k.pos, k.pos_frame, pos, h.frame, map_);
        if (res.suspicious()) {
          emit(h.origin, verify::CheckType::kPosition, vantage, h.frame, res);
        }
      }
      maybe_close_guidance(h.origin, vantage, h.frame, k.has_guidance,
                           k.guidance, k.path_samples);
      if (k.has_guidance) k.path_samples.emplace_back(h.frame, pos);
      checkpoint_pos(k, pos, h.frame);
      k.pos = pos;
      k.pos_frame = h.frame;
      k.last_heard = now;
      break;
    }
    case MsgType::kKillClaim: {
      // Witness verification of a forwarded kill claim.
      const KillClaim claim = decode_kill_body(msg.body);
      if (claim.victim >= schedule_.num_players()) break;
      verify::KillClaimEvidence ev;
      ev.weapon = claim.weapon;
      ev.claimed_distance = claim.distance;
      ev.shooter_pos = k.pos_frame >= 0 ? k.pos : Vec3{};
      ev.shooter_pos_age =
          k.pos_frame >= 0 ? std::max<Frame>(0, frame_ - k.pos_frame) : 200;
      if (in_death_window(h.origin, h.frame)) ev.shooter_pos_age = 200;
      const RemoteKnowledge& vk = know_[claim.victim];
      ev.victim_pos = vk.pos_frame >= 0 ? vk.pos : claim.victim_pos;
      ev.victim_pos_age = vk.pos_frame >= 0 ? frame_ - vk.pos_frame : 0;
      if (in_death_window(claim.victim, h.frame)) ev.victim_pos_age = 200;
      // Witnesses know the shooter's position less precisely than the proxy
      // does; only fresh knowledge supports an LOS judgement, with slack.
      ev.line_of_sight =
          k.pos_frame < 0 || frame_ - k.pos_frame > 2 ||
          los_with_slack(k.pos + Vec3{0, 0, 56},
                         claim.victim_pos + Vec3{0, 0, 56});
      if (h.frame == k.last_kill_claim) {
        ++k.kill_claims_same_frame;
        ev.frames_since_last_fire = k.kill_claims_same_frame <= 5 ? 1000 : 0;
      } else {
        ev.frames_since_last_fire = h.frame - k.last_kill_claim;
        k.kill_claims_same_frame = 1;
      }
      k.last_kill_claim = h.frame;
      ev.frames_victim_in_shooter_is = 1000;
      ev.shooter_ammo = k.has_state ? k.state.ammo + 1 : 1;
      const verify::CheckResult res = verify::check_kill(ev);
      if (res.suspicious()) {
        emit(h.origin, verify::CheckType::kKill, vantage, h.frame, res);
      }
      // Record the obituary only after judging the claim itself.
      know_[claim.victim].last_death = h.frame;
      break;
    }
    default:
      break;
  }
}

void WatchmenPeer::forward_to(const std::vector<PlayerId>& recipients,
                              std::span<const std::uint8_t> wire,
                              PlayerId subject) {
  for (PlayerId to : recipients) {
    if (to == id_) continue;
    if (misbehavior_->proxy_drop_forward(subject, frame_)) continue;
    auto bytes = std::make_shared<const std::vector<std::uint8_t>>(
        wire.begin(), wire.end());
    if (misbehavior_->proxy_tamper_forward(subject, frame_)) {
      auto tampered = *bytes;
      if (!tampered.empty()) tampered[tampered.size() / 2] ^= 0xff;
      bytes = std::make_shared<const std::vector<std::uint8_t>>(std::move(tampered));
    }
    ++metrics_.forwarded;
    net_send(to, std::move(bytes));
  }
}

// --------------------------------------------------------------- helpers

void WatchmenPeer::emit(PlayerId suspect, verify::CheckType type,
                        verify::Vantage vantage, Frame frame,
                        const verify::CheckResult& res) {
  if (!report_ || suspect == id_) return;
  verify::CheatReport r;
  r.verifier = id_;
  r.suspect = suspect;
  r.type = type;
  r.vantage = vantage;
  r.frame = frame;
  r.deviation = res.deviation;
  r.rating = res.rating;
  report_(r);
}

bool WatchmenPeer::in_death_window(PlayerId q, Frame baseline_frame) const {
  return know_[q].last_death + kDeathWindowFrames >= baseline_frame;
}

bool WatchmenPeer::los_with_slack(const Vec3& from_eye, const Vec3& to_eye) const {
  constexpr double kJitter = 32.0;
  const Vec3 offsets[] = {{0, 0, 0},       {kJitter, 0, 0},  {-kJitter, 0, 0},
                          {0, kJitter, 0}, {0, -kJitter, 0}, {0, 0, kJitter}};
  for (const Vec3& off : offsets) {
    if (map_->visible(from_eye + off, to_eye)) return true;
  }
  return false;
}

void WatchmenPeer::checkpoint_pos(RemoteKnowledge& k, const Vec3& next_pos,
                                  Frame next_frame) {
  if (k.pos_frame < 0 || next_frame <= k.pos_frame) return;
  // Pin the pre-jump sample when the position teleports: death + respawn
  // move an avatar across the map in one step, and peers that missed the
  // obituary legitimately keep aiming near the old spot for a while. A
  // physically reachable move is not worth remembering — the regular
  // drift slack already covers it.
  const Frame gap = next_frame - k.pos_frame;
  const double moved = std::hypot(next_pos.x - k.pos.x, next_pos.y - k.pos.y);
  if (moved > 64.0 + game::max_legal_horizontal(static_cast<int>(gap))) {
    k.old_pos = k.pos;
    k.old_pos_frame = k.pos_frame;
  }
}

void WatchmenPeer::flush_pending_subs(Frame f) {
  auto it = pending_subs_.begin();
  while (it != pending_subs_.end()) {
    const RemoteKnowledge& tk = know_[it->target];
    bool resolve = false;
    verify::CheckResult res = it->result;
    if (tk.pos_frame >= it->frame) {
      // A sample at-or-after the subscription frame arrived: re-judge the
      // cone against where the target actually was, budgeting its legal
      // movement across the small timestamp gap. An honest subscriber
      // whose verdict only looked bad because the verifier's view
      // straddled an unseen respawn passes now; a harvested position
      // stays outside the cone and the original rating stands.
      const auto gap =
          static_cast<int>(std::max<Frame>(1, tk.pos_frame - it->frame));
      double dev = interest::cone_deviation(it->sub_state, tk.pos, it->vision) -
                   game::max_legal_horizontal(gap);
      // Symmetric benefit of the doubt: the subscriber may instead have
      // been the stale party, aiming where the target stood *before* a
      // respawn whose obituary it missed.
      if (tk.old_pos_frame >= 0 && tk.old_pos_frame >= it->frame - kDeathWindowFrames &&
          tk.old_pos_frame <= it->frame + kDeathWindowFrames) {
        dev = std::min(
            dev, interest::cone_deviation(it->sub_state, tk.old_pos,
                                          it->vision) -
                     game::max_legal_horizontal(static_cast<int>(
                         std::max<Frame>(1, it->frame - tk.old_pos_frame))));
      }
      if (dev <= it->slack) res.rating = 5.0;
      resolve = true;
    } else if (f >= it->deadline) {
      resolve = true;  // target went silent: the original evidence stands
    }
    if (resolve) {
      emit(it->origin, it->type, verify::Vantage::kProxy, it->frame, res);
      it = pending_subs_.erase(it);
    } else {
      ++it;
    }
  }
}

verify::Vantage WatchmenPeer::vantage_towards(PlayerId suspect) const {
  if (suspect < schedule_.num_players() && proxied_.contains(suspect)) {
    return verify::Vantage::kProxy;
  }
  const auto it = sent_level_.find(suspect);
  if (it != sent_level_.end()) {
    if (it->second == interest::SetKind::kInterest) {
      return verify::Vantage::kInterestWitness;
    }
    if (it->second == interest::SetKind::kVision) {
      return verify::Vantage::kVisionWitness;
    }
  }
  return verify::Vantage::kOther;
}

std::vector<game::AvatarState> WatchmenPeer::knowledge_snapshot() const {
  std::vector<game::AvatarState> snap(schedule_.num_players());
  for (PlayerId q = 0; q < schedule_.num_players(); ++q) {
    if (q == id_ && has_own_state_) {
      snap[q] = own_state_;
      continue;
    }
    const RemoteKnowledge& k = know_[q];
    if (k.has_state) {
      snap[q] = k.state;
      if (k.pos_frame > k.state_frame) snap[q].pos = k.pos;
    } else if (k.pos_frame >= 0) {
      snap[q].pos = k.pos;
    } else {
      snap[q].alive = false;  // never heard of: can't be in anyone's cone
    }
  }
  return snap;
}

void WatchmenPeer::maybe_close_guidance(
    PlayerId suspect, verify::Vantage vantage, Frame observed_frame,
    bool& has_guidance, const interest::Guidance& guidance,
    std::vector<std::pair<Frame, Vec3>>& samples) {
  if (!has_guidance) return;
  if (observed_frame <= guidance.frame + cfg_.guidance_period + 2) return;
  if (!samples.empty()) {
    verify_guidance_window(suspect, vantage, guidance, samples);
  }
  has_guidance = false;
  samples.clear();
}

void WatchmenPeer::verify_guidance_window(
    PlayerId suspect, verify::Vantage vantage,
    const interest::Guidance& old_guidance,
    const std::vector<std::pair<Frame, Vec3>>& all_samples) {
  // A death inside (or just before) the window makes the respawn teleport
  // pollute the comparison: keep only samples from before the death. The
  // time-normalized metric keeps trimmed windows comparable.
  std::vector<std::pair<Frame, Vec3>> samples;
  const Frame death = know_[suspect].last_death;
  const bool trim_death = death >= old_guidance.frame - kDeathWindowFrames;
  // Cap the horizon at one guidance period (+ jitter): if the next guidance
  // was lost, later samples compare against a prediction the sender never
  // claimed to cover, and the area integral would grow quadratically.
  const Frame horizon = old_guidance.frame + cfg_.guidance_period + 2;
  for (const auto& s : all_samples) {
    if (s.first < old_guidance.frame) continue;  // predates this window
    if (trim_death && s.first >= death) continue;
    if (s.first > horizon) continue;
    samples.push_back(s);
  }
  if (samples.empty()) return;

  // Rebuild a contiguous actual path at the sampled frames.
  std::vector<Vec3> path;
  path.reserve(samples.size());
  Frame first = samples.front().first;
  // The area metric expects per-frame samples; when the verifier only has
  // sparse samples (VS witnesses), interpolate between them.
  const Frame last = samples.back().first;
  if (last < first) return;
  std::size_t si = 0;
  for (Frame f = first; f <= last; ++f) {
    while (si + 1 < samples.size() && samples[si + 1].first <= f) ++si;
    if (si + 1 < samples.size() && samples[si].first <= f) {
      const auto& [f0, p0] = samples[si];
      const auto& [f1, p1] = samples[si + 1];
      const double t = f1 > f0 ? static_cast<double>(f - f0) / (f1 - f0) : 0.0;
      path.push_back(lerp(p0, p1, t));
    } else {
      path.push_back(samples[si].second);
    }
  }
  const verify::CheckResult res = verify::check_guidance(
      old_guidance, path, first, cfg_.guidance_tolerance);
#ifdef WATCHMEN_DEBUG_GUIDANCE
  if (res.deviation > 400) {
    std::fprintf(stderr,
                 "GUID v=%u s=%u gframe=%lld first=%lld last=%lld n=%zu dev=%.0f\n",
                 id_, suspect, (long long)old_guidance.frame, (long long)first,
                 (long long)samples.back().first, path.size(), res.deviation);
  }
#endif
  if (res.suspicious()) {
    emit(suspect, verify::CheckType::kGuidance, vantage, old_guidance.frame, res);
  }
}

std::vector<PlayerId> WatchmenPeer::proxied_players() const {
  std::vector<PlayerId> out;
  out.reserve(proxied_.size());
  for (const auto& [p, _] : proxied_) out.push_back(p);
  std::sort(out.begin(), out.end());
  return out;
}

interest::SetKind WatchmenPeer::proxy_table_level(PlayerId subject,
                                                  PlayerId subscriber) const {
  const auto it = proxied_.find(subject);
  if (it == proxied_.end()) return interest::SetKind::kOther;
  return it->second.subs.level_of(subscriber, frame_);
}

}  // namespace watchmen::core
