#pragma once
// Shared handoff/failover/churn protocol constants (DESIGN.md §5g).
//
// These numbers define the timing skeleton of the proxy-transition
// protocol: how long an outgoing proxy keeps serving in-flight traffic,
// when an agreed churn removal / rejoin restore takes effect, and how much
// round skew the handoff validator tolerates. They used to live as
// literals inside WatchmenPeer; tools/wmcheck models the same protocol as
// a pure transition system, and the model is only a *proof* about the
// implementation if both read the very same constants — so they live here,
// included by core/peer and by the wmcheck model.
//
// Changing any value changes the protocol: wmcheck re-verifies the
// exactly-one-active-proxy and termination invariants against the new
// timing on the next CI run, which is the intended workflow for tuning.

#include "util/ids.hpp"

namespace watchmen::core::protocol {

/// After handing a player off, the old proxy keeps the proxied state alive
/// this many frames and keeps serving messages already in flight to it
/// across the round boundary (forwards, subscription verifies).
inline constexpr Frame kGraceFrames = 6;

/// A silence-agreed churn removal broadcast in round r schedules the
/// player's pool exit for round r + this (one full round of notice so every
/// peer applies the same pool at the same round boundary).
inline constexpr std::int64_t kChurnRemovalDelayRounds = 2;

/// A rejoin notice broadcast in round r restores the player to the pool at
/// round r + this — enough lead time for the notice to spread before
/// assignment math starts depending on it.
inline constexpr std::int64_t kRejoinRestoreDelayRounds = 2;

/// Protocol-violation reports are suppressed while
/// round - last_pool_change_round <= this: peers' schedules may briefly
/// diverge while churn notices propagate, and divergence is not cheating.
inline constexpr std::int64_t kPoolTransitionGraceRounds = 2;

/// A handoff stamped in round s is still installable while
/// s + kHandoffStaleRounds >= current round (covers retransmits and
/// boundary-crossing copies); anything older is silently dropped.
inline constexpr std::int64_t kHandoffStaleRounds = 1;

}  // namespace watchmen::core::protocol
