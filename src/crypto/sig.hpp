#pragma once
// "SchnorrLite": a Schnorr-style signature over the multiplicative group of
// Z_p with p = 2^61 - 1.
//
// Paper substitution note (see DESIGN.md §2): Watchmen uses a lightweight
// digital-signature scheme producing ~100-bit signatures [17]. We reproduce
// the *interface and cost model* — 16-byte signatures on ~88-byte state
// updates, real reject-on-tamper/replay behaviour — with a scheme that fits
// in 64-bit arithmetic. A 61-bit group is NOT cryptographically strong; a
// production deployment would swap in Ed25519 behind the same API.

#include <array>
#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace watchmen::crypto {

/// Group modulus: the Mersenne prime 2^61 - 1.
constexpr std::uint64_t kGroupP = (1ULL << 61) - 1;
/// Exponent modulus (group order): p - 1.
constexpr std::uint64_t kGroupQ = kGroupP - 1;
/// Generator of a large subgroup of Z_p^*.
constexpr std::uint64_t kGroupG = 37;

std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b, std::uint64_t m);
std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

/// A signature is the pair (e, s); 16 bytes on the wire.
struct Signature {
  std::uint64_t e = 0;
  std::uint64_t s = 0;

  bool operator==(const Signature&) const = default;

  std::array<std::uint8_t, 16> encode() const;
  static Signature decode(std::span<const std::uint8_t> bytes);
};

constexpr std::size_t kSignatureBytes = 16;

struct KeyPair {
  std::uint64_t secret = 0;  ///< x in [1, q)
  std::uint64_t public_key = 0;  ///< y = g^x mod p

  /// Deterministic key generation from a seed (e.g. lobby-assigned).
  static KeyPair generate(std::uint64_t seed);
};

/// Signs a message. The nonce is derived deterministically from
/// (secret, message) à la RFC 6979, so signing is reproducible and never
/// leaks the key through nonce reuse across distinct messages.
Signature sign(const KeyPair& key, std::span<const std::uint8_t> message);

/// Verifies a signature against a public key.
bool verify(std::uint64_t public_key, std::span<const std::uint8_t> message,
            const Signature& sig);

}  // namespace watchmen::crypto
