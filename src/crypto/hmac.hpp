#pragma once
// HMAC-SHA256 (RFC 2104). Used for deterministic nonce derivation in the
// signature scheme and available as a cheaper symmetric authenticator for
// the hybrid (trusted-server) deployment mode.

#include <span>

#include "crypto/sha256.hpp"

namespace watchmen::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);

}  // namespace watchmen::crypto
