#pragma once
// SHA-256 (FIPS 180-4), implemented from scratch — no external crypto deps.
//
// Used for message digests inside the signature scheme and for deriving
// deterministic per-message nonces.

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace watchmen::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  /// Finalizes and returns the digest. The object must be reset() before reuse.
  Digest finish();

  static Digest hash(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }
  static Digest hash(std::string_view s) {
    Sha256 h;
    h.update(s);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// First 8 bytes of the digest as a little-endian integer — a convenient
/// 64-bit hash for tables and nonce derivation.
std::uint64_t digest_to_u64(const Digest& d);

}  // namespace watchmen::crypto
