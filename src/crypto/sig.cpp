#include "crypto/sig.hpp"

#include "crypto/hmac.hpp"
#include "util/rng.hpp"

namespace watchmen::crypto {

std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mod_mul(result, base, m);
    base = mod_mul(base, base, m);
    exp >>= 1;
  }
  return result;
}

std::array<std::uint8_t, 16> Signature::encode() const {
  std::array<std::uint8_t, 16> out{};
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(e >> (8 * i));
    out[8 + i] = static_cast<std::uint8_t>(s >> (8 * i));
  }
  return out;
}

Signature Signature::decode(std::span<const std::uint8_t> bytes) {
  Signature sig;
  if (bytes.size() < 16) return sig;
  for (int i = 0; i < 8; ++i) {
    sig.e |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    sig.s |= static_cast<std::uint64_t>(bytes[8 + i]) << (8 * i);
  }
  return sig;
}

KeyPair KeyPair::generate(std::uint64_t seed) {
  KeyPair kp;
  // Mix until the secret lands in [1, q).
  std::uint64_t x = mix64(seed ^ 0x5ec2e7deadbeef01ULL);
  while (x % kGroupQ == 0) x = mix64(x);
  kp.secret = x % kGroupQ;
  kp.public_key = mod_pow(kGroupG, kp.secret, kGroupP);
  return kp;
}

namespace {

/// Hash (r || message) into an exponent in [1, q).
std::uint64_t challenge(std::uint64_t r, std::span<const std::uint8_t> message) {
  Sha256 h;
  std::uint8_t r_bytes[8];
  for (int i = 0; i < 8; ++i) r_bytes[i] = static_cast<std::uint8_t>(r >> (8 * i));
  h.update(std::span<const std::uint8_t>(r_bytes, 8));
  h.update(message);
  std::uint64_t e = digest_to_u64(h.finish()) % kGroupQ;
  return e == 0 ? 1 : e;
}

/// Deterministic nonce in [1, q), derived from the secret and the message.
std::uint64_t derive_nonce(std::uint64_t secret,
                           std::span<const std::uint8_t> message) {
  std::uint8_t key_bytes[8];
  for (int i = 0; i < 8; ++i) key_bytes[i] = static_cast<std::uint8_t>(secret >> (8 * i));
  const Digest d = hmac_sha256(std::span<const std::uint8_t>(key_bytes, 8), message);
  std::uint64_t k = digest_to_u64(d) % kGroupQ;
  return k == 0 ? 1 : k;
}

}  // namespace

Signature sign(const KeyPair& key, std::span<const std::uint8_t> message) {
  const std::uint64_t k = derive_nonce(key.secret, message);
  const std::uint64_t r = mod_pow(kGroupG, k, kGroupP);
  const std::uint64_t e = challenge(r, message);
  // s = k + e*x (mod q)
  const std::uint64_t s =
      (k + mod_mul(e, key.secret, kGroupQ)) % kGroupQ;
  return {e, s};
}

bool verify(std::uint64_t public_key, std::span<const std::uint8_t> message,
            const Signature& sig) {
  if (sig.e == 0 || sig.e >= kGroupQ || sig.s >= kGroupQ) return false;
  if (public_key == 0 || public_key >= kGroupP) return false;
  // r' = g^s * y^(-e) = g^s * y^(q - e)   (y^q == 1 by Fermat)
  const std::uint64_t gs = mod_pow(kGroupG, sig.s, kGroupP);
  const std::uint64_t ye = mod_pow(public_key, kGroupQ - sig.e, kGroupP);
  const std::uint64_t r = mod_mul(gs, ye, kGroupP);
  return challenge(r, message) == sig.e;
}

}  // namespace watchmen::crypto
