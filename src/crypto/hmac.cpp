#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace watchmen::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Digest kd = Sha256::hash(key);
    std::memcpy(block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad));
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad));
  outer.update(std::span<const std::uint8_t>(inner_digest));
  return outer.finish();
}

}  // namespace watchmen::crypto
