#pragma once
// Per-session key registry: the game lobby hands every player a key pair and
// publishes the public keys to everyone (paper, Section IV "Encryption &
// Signatures"). Players use them to sign updates/subscriptions/handoffs so
// proxies cannot tamper, replay, or spoof.

#include <cstdint>
#include <vector>

#include "crypto/sig.hpp"
#include "util/ids.hpp"

namespace watchmen::crypto {

class KeyRegistry {
 public:
  KeyRegistry() = default;

  /// Creates keys for players 0..n-1, all derived from the session seed.
  KeyRegistry(std::uint64_t session_seed, std::size_t n_players) {
    keys_.reserve(n_players);
    for (std::size_t i = 0; i < n_players; ++i) {
      keys_.push_back(KeyPair::generate(session_seed ^ (0xabcd1234ULL + i * 0x9e37ULL)));
    }
  }

  std::size_t size() const { return keys_.size(); }

  /// Full key pair — only the owning player may call this for itself in a
  /// real deployment; the simulation holds all of them.
  const KeyPair& key_pair(PlayerId p) const { return keys_.at(p); }

  std::uint64_t public_key(PlayerId p) const { return keys_.at(p).public_key; }

 private:
  std::vector<KeyPair> keys_;
};

}  // namespace watchmen::crypto
