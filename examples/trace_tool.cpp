// trace_tool: record, inspect, and replay game traces from the command
// line — the workflow the paper's tracing module + Python replay engine
// provided, as one self-contained binary.
//
//   trace_tool record <file> [players] [frames] [seed] [map]
//   trace_tool info   <file>
//   trace_tool replay <file> [king|peerwise|lan] [loss]
//
// `map` is q3dm17 (default) or q3dm6.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/session.hpp"
#include "game/map.hpp"
#include "game/trace.hpp"

using namespace watchmen;

namespace {

game::GameMap map_by_name(const std::string& name) {
  if (name == "q3dm6" || name == "campgrounds") return game::make_campgrounds();
  return game::make_longest_yard();
}

int cmd_record(int argc, char** argv) {
  const std::string path = argv[0];
  game::SessionConfig cfg;
  cfg.n_players = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 48;
  cfg.n_frames = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2400;
  cfg.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;
  const game::GameMap map = map_by_name(argc > 4 ? argv[4] : "q3dm17");

  std::printf("recording %zu players x %zu frames on %s (seed %llu)...\n",
              cfg.n_players, cfg.n_frames, map.name().c_str(),
              static_cast<unsigned long long>(cfg.seed));
  const game::GameTrace trace = game::record_session(map, cfg);
  trace.save(path);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), trace.serialize().size());
  return 0;
}

int cmd_info(const char* path) {
  const game::GameTrace trace = game::GameTrace::load(path);
  std::size_t shots = 0, hits = 0, kills = 0, pickups = 0;
  for (const auto& f : trace.frames) {
    shots += f.events.shots.size();
    hits += f.events.hits.size();
    kills += f.events.kills.size();
    pickups += f.events.pickups.size();
  }
  std::printf("map:      %s\n", trace.map_name.c_str());
  std::printf("players:  %u\n", trace.n_players);
  std::printf("frames:   %zu (%.1f s at %lld ms/frame)\n", trace.num_frames(),
              static_cast<double>(trace.num_frames()) * kFrameMs / 1000.0,
              static_cast<long long>(kFrameMs));
  std::printf("seed:     %llu\n", static_cast<unsigned long long>(trace.seed));
  std::printf("events:   %zu shots, %zu hits, %zu kills, %zu pickups\n", shots,
              hits, kills, pickups);

  std::printf("frags:    ");
  const auto& last = trace.frames.back().avatars;
  for (PlayerId p = 0; p < trace.n_players; ++p) {
    std::printf("%d%s", last[p].frags, p + 1 < trace.n_players ? " " : "\n");
  }
  return 0;
}

int cmd_replay(int argc, char** argv) {
  const game::GameTrace trace = game::GameTrace::load(argv[0]);
  const game::GameMap map = map_by_name(
      trace.map_name.find("dm6") != std::string::npos ? "q3dm6" : "q3dm17");

  core::SessionOptions opts;
  const std::string net = argc > 1 ? argv[1] : "king";
  opts.net = net == "peerwise" ? core::NetProfile::kPeerwise
             : net == "lan"    ? core::NetProfile::kLan
                               : core::NetProfile::kKing;
  opts.loss_rate = argc > 2 ? std::atof(argv[2]) : 0.01;

  std::printf("replaying %zu frames through Watchmen over %s (%.1f%% loss)...\n",
              trace.num_frames(), net.c_str(), 100 * opts.loss_rate);
  core::WatchmenSession session(trace, map, opts);
  session.run();

  const auto& stats = session.network().stats();
  const Samples ages = session.merged_update_ages();
  double late = 0;
  for (double v : ages.values()) late += (v >= 3.0);
  std::printf("network:  %llu sent, %llu delivered, %llu lost\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped));
  std::printf("ages:     median %.0f, p99 %.0f frames; %.2f%% over the "
              "150 ms playability bound\n",
              ages.quantile(0.5), ages.quantile(0.99),
              100.0 * late / static_cast<double>(std::max<std::size_t>(1, ages.count())));
  std::printf("reports:  %zu verification reports, ",
              session.detector().total_reports());
  std::size_t flagged = 0;
  for (PlayerId p = 0; p < trace.n_players; ++p) {
    flagged += session.detector().flagged(p);
  }
  std::printf("%zu players flagged high-confidence\n", flagged);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "record") == 0) {
    return cmd_record(argc - 2, argv + 2);
  }
  if (argc >= 3 && std::strcmp(argv[1], "info") == 0) {
    return cmd_info(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "replay") == 0) {
    return cmd_replay(argc - 2, argv + 2);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool record <file> [players] [frames] [seed] [map]\n"
               "  trace_tool info   <file>\n"
               "  trace_tool replay <file> [king|peerwise|lan] [loss]\n");
  return 2;
}
