// Hybrid architecture (paper §VI): when a trusted game server exists it
// can join as a super-proxy — the verifiable random schedule is simply
// weighted so the server serves (almost) every player. Tasks can later be
// delegated back to players as they prove trustworthy.
//
// This example runs the same trace twice — fully decentralized vs hybrid —
// and compares update latency and exposure of player traffic to other
// players.

#include <cstdio>

#include "core/session.hpp"
#include "game/map.hpp"
#include "game/trace.hpp"

using namespace watchmen;

namespace {

struct Outcome {
  double median_age = 0.0;
  double p99_age = 0.0;
  double player_proxy_share = 0.0;  ///< fraction of players proxied by peers
};

Outcome run(const game::GameTrace& trace, const game::GameMap& map,
            bool hybrid) {
  core::SessionOptions opts;
  opts.net = core::NetProfile::kKing;
  opts.loss_rate = 0.01;

  const PlayerId server = trace.n_players - 1;  // last "player" is the server
  if (hybrid) {
    // The server gets (nearly) all the proxy weight; player 0 keeps a tiny
    // weight so the server itself still has a proxy. A datacenter server
    // has plenty of uplink; players keep consumer rates.
    for (PlayerId p = 0; p < trace.n_players; ++p) {
      opts.pool_weights.emplace_back(p, p == server ? 1.0 : 0.0);
    }
    opts.pool_weights.emplace_back(0, 1e-6);
    opts.upload_bps.emplace_back(server, 1e9);
  }
  core::WatchmenSession session(trace, map, opts);
  session.run();

  Outcome out;
  const Samples ages = session.merged_update_ages();
  out.median_age = ages.quantile(0.5);
  out.p99_age = ages.quantile(0.99);

  std::size_t peer_proxied = 0;
  for (PlayerId p = 0; p < trace.n_players; ++p) {
    if (p != server &&
        session.schedule().proxy_at(p, session.current_frame() - 1) != server) {
      ++peer_proxied;
    }
  }
  out.player_proxy_share =
      static_cast<double>(peer_proxied) / static_cast<double>(trace.n_players - 1);
  return out;
}

}  // namespace

int main() {
  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig cfg;
  cfg.n_players = 24;  // 23 players + 1 server node
  cfg.n_frames = 600;
  cfg.seed = 5;
  const game::GameTrace trace = game::record_session(map, cfg);

  const Outcome p2p = run(trace, map, /*hybrid=*/false);
  const Outcome hybrid = run(trace, map, /*hybrid=*/true);

  std::printf("%-24s %18s %18s\n", "", "decentralized", "hybrid (server)");
  std::printf("%-24s %15.1f fr %15.1f fr\n", "median update age",
              p2p.median_age, hybrid.median_age);
  std::printf("%-24s %15.1f fr %15.1f fr\n", "p99 update age", p2p.p99_age,
              hybrid.p99_age);
  std::printf("%-24s %17.0f%% %17.0f%%\n", "players proxied by peers",
              100 * p2p.player_proxy_share, 100 * hybrid.player_proxy_share);
  std::printf("\nIn hybrid mode no player traffic is exposed to other "
              "players' proxies — the trusted server sees it instead — and "
              "the same verification machinery keeps running unchanged.\n");
  return 0;
}
