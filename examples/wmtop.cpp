// wmtop: a top(1)-style live dashboard over the observability registry
// (ISSUE 5 tentpole, piece 4; DESIGN.md §5e).
//
// Runs a deterministic 24-player match with a cheat roster and a mid-match
// chaos window (bursty loss + a proxy crash/rejoin), with an obs::Registry
// and obs::Tracer attached to the session. Once per simulated second it
// pulls a registry snapshot and prints one dashboard line: staleness p99,
// per-class bandwidth, reliability work, detector verdicts. This is the
// operator's view of a match — the same counters a real deployment would
// scrape — so the fault window and the detector catching the cheaters are
// visible as they happen.
//
// Usage: wmtop [seconds] [--overhaul] [--snapshot FILE.json]
//              [--trace FILE.trace.json]
//   --overhaul  run with the wire-format overhaul (batching + anchored
//               deltas + compact headers); the batch column goes live and
//               the B/p/s column drops visibly
//   --snapshot  write the final registry snapshot (registry schema JSON)
//   --trace     write the frame tracer's ring as Chrome trace_event JSON
//               (load in about:tracing or https://ui.perfetto.dev)
//
// Bandwidth columns are read back from the registry's
// net.bytes_sent{type=...} counters and net.batch_size_mean gauge — the
// same names a real scrape would use — not from the network object
// directly, so the dashboard exercises the exported schema end to end.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "game/map.hpp"
#include "game/trace.hpp"
#include "net/fault.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

using namespace watchmen;

namespace {

constexpr std::size_t kPlayers = 24;
constexpr std::size_t kFramesPerSecond = 1000 / kFrameMs;  // 20

bool write_file(const std::string& path, const std::string& doc) {
  std::ofstream out(path);
  if (out) out << doc;
  if (!out) {
    std::fprintf(stderr, "wmtop: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

double kbps(std::uint64_t bits_delta) {
  return static_cast<double>(bits_delta) / 1000.0;  // bits over one second
}

/// Cumulative per-class byte counter as exported by the session's
/// collect_metrics (0 until the class first appears on the wire).
std::uint64_t bytes_of(obs::Registry& reg, const char* type) {
  return reg.counter(std::string("net.bytes_sent{type=") + type + "}").value();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t seconds = 30;
  bool overhaul = false;
  std::string snapshot_path, trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--overhaul") == 0) {
      overhaul = true;
    } else if (argv[i][0] != '-') {
      seconds = static_cast<std::size_t>(std::atoi(argv[i]));
      if (seconds == 0) seconds = 30;
    } else {
      std::fprintf(stderr,
                   "usage: wmtop [seconds] [--overhaul] [--snapshot FILE.json] "
                   "[--trace FILE.trace.json]\n");
      return 2;
    }
  }
  const std::size_t n_frames = seconds * kFramesPerSecond;

  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig game_cfg;
  game_cfg.n_players = kPlayers;
  game_cfg.n_frames = n_frames;
  game_cfg.seed = 7;
  const game::GameTrace trace = game::record_session(map, game_cfg);

  // Two cheaters for the detector columns to light up on.
  const std::vector<obs::CheatSpec> roster = {
      {obs::RosterCheat::kSpeedHack, 0, {1, 0.08, 6.0}},
      {obs::RosterCheat::kSuppressCorrect, 1, {40, 15}},
  };
  std::vector<std::unique_ptr<core::Misbehavior>> owned;
  const auto cheaters = obs::make_misbehaviors(roster, kPlayers, owned);

  core::SessionOptions opts;
  opts.net = core::NetProfile::kFixed;
  opts.fixed_latency_ms = 25.0;
  opts.loss_rate = 0.01;
  if (n_frames > 300) {
    // Mid-match chaos: a bursty-loss window over seconds 10-15 and a crash
    // + rejoin of player 5 inside it, so the dashboard shows degradation
    // and recovery.
    net::FaultPlan plan;
    plan.bursts.push_back({time_of(Frame{200}), time_of(Frame{300}),
                           {0.15, 0.4, 0.02, 0.9}});
    plan.crashes.push_back({Frame{220}, PlayerId{5}, Frame{320}});
    opts.faults = plan;
  }

  if (overhaul) {
    // The shipped wire overhaul (mirrors deathmatch_48's configuration):
    // with batching on, per-origin envelopes travel inside kBatch
    // containers, so the "batch" column carries most of the traffic and
    // the per-class columns show only the unbatched remainder.
    opts.watchmen.batching = true;
    opts.watchmen.delta_updates = true;
    opts.watchmen.ack_anchored = true;
    opts.watchmen.quantized_guidance = true;
    opts.watchmen.subscriber_diffs = true;
    opts.watchmen.compact_headers = true;
    opts.watchmen.other_update_budget = 64;
  }

  obs::Registry registry;
  obs::Tracer tracer;
  opts.registry = &registry;
  opts.tracer = &tracer;

  core::WatchmenSession session(trace, map, opts, cheaters);

  std::printf("wmtop — %zu players, %zus match, chaos window 10s-15s%s\n",
              kPlayers, seconds, overhaul ? ", wire overhaul ON" : "");
  // Per-second deltas come from registry snapshot differences: cumulative
  // net.bytes_sent{type=...} counters sampled after each collect().
  std::uint64_t prev_total = 0, prev_state = 0, prev_guid = 0, prev_batch = 0;
  std::uint64_t prev_drops = 0, prev_reports = 0;
  for (std::size_t sec = 0; sec < seconds; ++sec) {
    if (sec % 10 == 0) {
      std::printf("%4s %8s %8s %8s %8s %8s %7s %6s %6s %8s %8s\n", "sec",
                  "p99(fr)", "state", "guid", "batch", "ctrl", "B/p/s",
                  "avgB", "drops", "reports", "flagged");
    }
    session.run_frames(kFramesPerSecond);
    registry.collect();

    const std::uint64_t total =
        registry.counter("net.bits_sent").value() / 8;
    const std::uint64_t state = bytes_of(registry, "state-update");
    const std::uint64_t guid = bytes_of(registry, "guidance");
    const std::uint64_t batch = bytes_of(registry, "batch");
    const std::uint64_t drops = registry.counter("net.dropped").value();
    const std::uint64_t reports =
        registry.counter("detector.reports").value();
    const double batch_mean = registry.gauge("net.batch_size_mean").value();

    const std::uint64_t ctrl =
        (total - prev_total) - (state - prev_state) - (guid - prev_guid) -
        (batch - prev_batch);
    std::printf("%4zu %8.2f %7.0fk %7.0fk %7.0fk %7.0fk %7.0f %6.2f %6llu "
                "%8llu %8llu\n",
                sec + 1, registry.gauge("session.staleness_p99").value(),
                kbps(8 * (state - prev_state)), kbps(8 * (guid - prev_guid)),
                kbps(8 * (batch - prev_batch)), kbps(8 * ctrl),
                static_cast<double>(total - prev_total) / kPlayers,
                batch_mean > 0 ? batch_mean : 1.0,
                static_cast<unsigned long long>(drops - prev_drops),
                static_cast<unsigned long long>(reports - prev_reports),
                static_cast<unsigned long long>(
                    registry.counter("detector.flagged_players").value()));
    prev_total = total;
    prev_state = state;
    prev_guid = guid;
    prev_batch = batch;
    prev_drops = drops;
    prev_reports = reports;
  }

  std::printf("\nmatch over: %llu trace events in ring (%llu emitted), "
              "%zu metrics registered\n",
              static_cast<unsigned long long>(tracer.total_events() -
                                              tracer.dropped_events()),
              static_cast<unsigned long long>(tracer.total_events()),
              registry.num_metrics());

  if (!snapshot_path.empty() &&
      !write_file(snapshot_path, registry.snapshot_json())) {
    return 2;
  }
  if (!trace_path.empty() &&
      !write_file(trace_path, tracer.chrome_trace_json())) {
    return 2;
  }
  if (!snapshot_path.empty()) {
    std::printf("registry snapshot -> %s\n", snapshot_path.c_str());
  }
  if (!trace_path.empty()) {
    std::printf("chrome trace -> %s (open in ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return 0;
}
