// Quickstart: record a small deathmatch, replay it through the full
// Watchmen protocol stack over a simulated Internet, and inspect what
// happened — the minimal end-to-end use of the library.

#include <cstdio>

#include "core/session.hpp"
#include "game/map.hpp"
#include "game/trace.hpp"

using namespace watchmen;

int main() {
  // 1. A game world: the q3dm17-style arena all experiments use.
  const game::GameMap map = game::make_longest_yard();

  // 2. Record a deterministic 8-player session (30 s at 20 frames/s).
  game::SessionConfig game_cfg;
  game_cfg.n_players = 8;
  game_cfg.n_frames = 600;
  game_cfg.seed = 7;
  const game::GameTrace trace = game::record_session(map, game_cfg);

  std::size_t kills = 0, shots = 0;
  for (const auto& f : trace.frames) {
    kills += f.events.kills.size();
    shots += f.events.shots.size();
  }
  std::printf("recorded %zu frames, %zu shots, %zu kills\n",
              trace.num_frames(), shots, kills);

  // 3. Replay it through Watchmen: every player publishes through its
  //    verifiable random proxy, subscribes by interest, and verifies peers.
  core::SessionOptions opts;
  opts.net = core::NetProfile::kKing;  // simulated US Internet latencies
  opts.loss_rate = 0.01;
  core::WatchmenSession session(trace, map, opts);
  session.run();

  // 4. What did the protocol do?
  const auto& stats = session.network().stats();
  std::printf("network: %llu messages sent, %llu delivered, %llu lost\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped));

  const Samples ages = session.merged_update_ages();
  std::printf("update age: median %.0f frames, p99 %.0f frames "
              "(1 frame = 50 ms)\n",
              ages.quantile(0.5), ages.quantile(0.99));

  std::printf("who proxies whom right now:\n");
  for (PlayerId p = 0; p < trace.n_players; ++p) {
    std::printf("  player %u -> proxy %u\n", p,
                session.schedule().proxy_at(p, session.current_frame() - 1));
  }

  std::printf("verification reports on honest traffic: %zu "
              "(all low confidence: %s)\n",
              session.detector().total_reports(), [&] {
                for (PlayerId p = 0; p < trace.n_players; ++p) {
                  if (session.detector().flagged(p)) return "no";
                }
                return "yes";
              }());
  return 0;
}
