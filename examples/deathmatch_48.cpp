// A full 48-player deathmatch with a mixed population of cheaters,
// end-to-end: gameplay -> protocol replay -> verification -> reputation ->
// bans. This is the scenario the paper's title promises: a large fast-paced
// game that stays playable while cheaters are caught during game play.
//
// The scenario doubles as the flight-recorder acceptance gate (ISSUE 5):
//   deathmatch_48 --record match.wmrec   captures the run (inputs + periodic
//                                        state digests) into a .wmrec file
//   deathmatch_48 --replay match.wmrec   re-runs it and exits nonzero unless
//                                        every checkpoint digest matches
// CI chains the two to prove the protocol stack is bit-deterministic.

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/session.hpp"
#include "game/map.hpp"
#include "game/trace.hpp"
#include "obs/recorder.hpp"
#include "reputation/reputation.hpp"

using namespace watchmen;

namespace {

game::GameTrace make_trace(const game::GameMap& map) {
  game::SessionConfig game_cfg;
  game_cfg.n_players = 48;
  game_cfg.n_frames = 1200;  // one minute
  game_cfg.n_humans = 40;    // plus 8 patrol bots
  game_cfg.seed = 2013;
  return game::record_session(map, game_cfg);
}

/// Cheater roster: four different cheats on four different players,
/// expressed as recordable CheatSpecs so the live run and the flight
/// recorder instantiate the exact same misbehaviors.
std::vector<obs::CheatSpec> make_roster() {
  return {
      {obs::RosterCheat::kSpeedHack, 0, {1, 0.08, 6.0}},
      {obs::RosterCheat::kFakeKill, 1, {2, 0.05}},
      {obs::RosterCheat::kGuidanceLie, 2, {3, 0.5, 4.0}},
      {obs::RosterCheat::kSuppressCorrect, 3, {40, 15}},
  };
}

core::SessionOptions make_options() {
  core::SessionOptions opts;
  opts.net = core::NetProfile::kKing;
  opts.loss_rate = 0.01;
  return opts;
}

/// The overhauled wire format, every flag on (what `--batch` records).
void enable_wire_overhaul(core::WatchmenConfig& c) {
  c.batching = true;
  c.delta_updates = true;  // ack_anchored rides the delta stream
  c.ack_anchored = true;
  c.quantized_guidance = true;
  c.subscriber_diffs = true;
  c.compact_headers = true;
  c.other_update_budget = 64;
}

int record_mode(const char* path, bool batch) {
  const game::GameMap map = game::make_longest_yard();
  obs::Recording rec;
  rec.options = make_options();
  if (batch) enable_wire_overhaul(rec.options.watchmen);
  rec.cheats = make_roster();
  rec.trace = make_trace(map);
  obs::record_run(rec);
  rec.save(path);
  std::size_t checkpoints = 0;
  for (const auto& e : rec.events) {
    if (e.kind == obs::RecEventKind::kCheckpoint ||
        e.kind == obs::RecEventKind::kEnd) {
      ++checkpoints;
    }
  }
  std::printf("recorded %zu frames, %zu checkpoint digests -> %s\n",
              rec.trace.num_frames(), checkpoints, path);
  return 0;
}

int replay_mode(const char* path) {
  const obs::Recording rec = obs::Recording::load(path);
  const obs::ReplayReport report = obs::replay_run(rec);
  if (report.ok) {
    std::printf("replay of %s: %zu/%zu checkpoints bit-identical\n", path,
                report.checkpoints_checked, report.checkpoints_checked);
    return 0;
  }
  std::printf("replay of %s DIVERGED at frame %lld (%zu checkpoints "
              "checked)\n",
              path, static_cast<long long>(report.first_divergence),
              report.checkpoints_checked);
  return 1;
}

/// Wire-equivalence gate: run the same deathmatch twice on a deterministic
/// network (fixed latency, zero loss) — once with the seed wire format,
/// once with per-link batching + compact headers — and require bit-identical
/// logical digests. Both are pure repackaging (shared datagrams, varint
/// envelope headers); they must not change what any peer decodes, knows, or
/// reports. (The lossy levers — quantized guidance, beacon budgeting — are
/// excluded by design: they trade precision/freshness for bytes.)
int wire_check_mode() {
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = make_trace(map);
  const std::vector<obs::CheatSpec> roster = make_roster();

  crypto::Digest digests[2];
  for (int pass = 0; pass < 2; ++pass) {
    core::SessionOptions opts;
    opts.net = core::NetProfile::kFixed;
    opts.fixed_latency_ms = 25.0;
    opts.loss_rate = 0.0;
    opts.watchmen.batching = pass == 1;
    opts.watchmen.compact_headers = pass == 1;
    std::vector<std::unique_ptr<core::Misbehavior>> owned;
    const auto cheaters = obs::make_misbehaviors(roster, 48, owned);
    core::WatchmenSession session(trace, map, opts, cheaters);
    session.run();
    digests[pass] = obs::logical_digest(session);
    std::printf("%s: %zu datagrams, %llu bits\n",
                pass == 0 ? "unbatched" : "batched  ",
                session.network().stats().sent,
                static_cast<unsigned long long>(
                    session.network().stats().bits_sent));
  }
  if (digests[0] == digests[1]) {
    std::printf("wire check: batched and unbatched logical digests "
                "bit-identical\n");
    return 0;
  }
  std::printf("wire check FAILED: batching changed the logical session "
              "state\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if ((argc == 3 || argc == 4) && std::strcmp(argv[1], "--record") == 0) {
    const bool batch = argc == 4 && std::strcmp(argv[3], "--batch") == 0;
    if (argc == 4 && !batch) {
      std::fprintf(stderr, "unknown flag %s\n", argv[3]);
      return 2;
    }
    return record_mode(argv[2], batch);
  }
  if (argc == 3 && std::strcmp(argv[1], "--replay") == 0) {
    return replay_mode(argv[2]);
  }
  if (argc == 2 && std::strcmp(argv[1], "--wire-check") == 0) {
    return wire_check_mode();
  }
  if (argc != 1) {
    std::fprintf(stderr,
                 "usage: deathmatch_48 [--record file.wmrec [--batch] | "
                 "--replay file.wmrec | --wire-check]\n");
    return 2;
  }

  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = make_trace(map);

  const std::vector<obs::CheatSpec> roster = make_roster();
  std::vector<std::unique_ptr<core::Misbehavior>> owned;
  const auto cheaters = obs::make_misbehaviors(roster, 48, owned);

  core::SessionOptions opts = make_options();
  core::WatchmenSession session(trace, map, opts, cheaters);
  session.run();

  // Feed every verification report into the reputation system; reporters'
  // confidence comes from their vantage, and their own standing damps
  // bad-mouthing.
  // Feed the reputation system chronologically, round by round, as it would
  // run online (paper §V-B): each proxy round either passes cleanly — an
  // acceptable interaction vouched for by the round's proxy — or draws
  // failed-interaction reports from the verifiers that flagged the player.
  reputation::ReputationConfig rep_cfg;
  rep_cfg.ban_threshold = 0.4;  // calibrated to our detector's FP profile
  reputation::ReputationSystem rep(48, rep_cfg);
  const Frame renewal = opts.watchmen.renewal_frames;
  const auto n_rounds = static_cast<std::int64_t>(1200 / renewal);
  for (std::int64_t round = 0; round < n_rounds; ++round) {
    std::vector<bool> flagged(48, false);
    for (const auto& r : session.detector().reports()) {
      if (r.frame / renewal != round) continue;
      // Witness-side rate reports blame the *proxy* of a starved stream,
      // but the witness cannot tell a dropping proxy from a suppressing
      // player; this circumstantial evidence stays out of the tally.
      if (r.type == verify::CheckType::kRate &&
          r.vantage != verify::Vantage::kProxy) {
        continue;
      }
      if (r.rating >= 6.0) {
        rep.report(r.verifier, r.suspect, /*success=*/false,
                   verify::confidence_weight(r.vantage));
        flagged[r.suspect] = true;
      }
    }
    for (PlayerId p = 0; p < 48; ++p) {
      if (!flagged[p]) rep.report(session.schedule().proxy_of(p, round), p, true, 1.0);
    }
    // Round boundary: snapshot reporter credibilities for the next round —
    // a reporter's collapsing standing mutes it from here on, and the
    // outcome stays independent of report order within the round.
    rep.advance_epoch();
  }

  // The misbehavior engine ran *online* inside the session (typed penalties,
  // discouragement / instant-ban tiers); print its verdicts alongside.
  const reputation::MisbehaviorEngine& engine = session.misbehavior();
  std::printf("%-8s %-12s %10s %12s %8s %9s %12s\n", "player", "cheat",
              "hc-reports", "reputation", "banned", "m-score", "standing");
  const char* labels[4] = {"speed-hack", "fake-kills", "guidance", "suppress"};
  for (PlayerId p = 0; p < 12; ++p) {
    const auto& s = session.detector().summary(p);
    const bool is_cheater = p < 4;
    std::printf("%-8u %-12s %10llu %12.3f %8s %9.1f %12s\n", p,
                is_cheater ? labels[p] : "-",
                static_cast<unsigned long long>(s.high_confidence_reports),
                rep.reputation(p), rep.should_ban(p) ? "BANNED" : "",
                engine.score(p), to_string(engine.standing(p)));
  }

  int caught = 0, wrongly_banned = 0;
  for (PlayerId p = 0; p < 48; ++p) {
    if (p < 4 && rep.should_ban(p)) ++caught;
    if (p >= 4 && rep.should_ban(p)) ++wrongly_banned;
  }
  std::printf("\ncheaters banned: %d/4, honest players wrongly banned: %d/44\n",
              caught, wrongly_banned);

  const Samples ages = session.merged_update_ages();
  double late = 0;
  for (double v : ages.values()) late += (v >= 3.0);
  std::printf("gameplay stayed playable: %.2f%% of updates 3+ frames late "
              "(150 ms bound)\n",
              100.0 * late / static_cast<double>(ages.count()));
  return 0;
}
