// Collusion probe: how much a growing coalition of cheaters learns about
// the rest of the game under three architectures. A compact tour of the
// exposure models behind the paper's Fig. 4.

#include <cstdio>
#include <memory>

#include "baseline/exposure.hpp"
#include "game/map.hpp"
#include "game/trace.hpp"

using namespace watchmen;
using baseline::ExposureCategory;

int main() {
  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig cfg;
  cfg.n_players = 48;
  cfg.n_frames = 1200;
  cfg.seed = 99;
  const game::GameTrace trace = game::record_session(map, cfg);

  const interest::InterestConfig icfg;
  const core::ProxySchedule schedule(trace.seed, trace.n_players);

  const baseline::ClientServerExposure cs(map);
  const baseline::DonnybrookExposure db(map, icfg);
  const baseline::WatchmenExposure wm(map, icfg, schedule);

  std::printf("How much can a coalition of c cheaters see?\n");
  std::printf("left: %% of honest players with detailed (frequent-or-better) "
              "info;  right: %% effectively hidden (1 Hz position or less)\n\n");
  std::printf("%-4s | %13s | %13s | %13s\n", "c", "client-server",
              "donnybrook", "watchmen");
  for (std::size_t c = 1; c <= 12; ++c) {
    auto probe = [&](const baseline::ExposureModel& m) {
      const auto f = baseline::measure_coalition_exposure(m, trace, c, 20);
      const double rich = f[static_cast<int>(ExposureCategory::kComplete)] +
                          f[static_cast<int>(ExposureCategory::kFreqPlusDr)] +
                          f[static_cast<int>(ExposureCategory::kFreqOnly)];
      const double hidden = f[static_cast<int>(ExposureCategory::kInfreqOnly)] +
                            f[static_cast<int>(ExposureCategory::kNothing)];
      return std::make_pair(rich, hidden);
    };
    const auto [csr, csh] = probe(cs);
    const auto [dbr, dbh] = probe(db);
    const auto [wmr, wmh] = probe(wm);
    std::printf("%-4zu | %4.0f%% / %4.0f%% | %4.0f%% / %4.0f%% | %4.0f%% / %4.0f%%\n",
                c, 100 * csr, 100 * csh, 100 * dbr, 100 * dbh, 100 * wmr,
                100 * wmh);
  }

  std::printf(
      "\nInterpretation: the C/S column shows what rendering inherently "
      "requires (frequent info about visible players) — but everything a "
      "coalition cannot see stays completely hidden. Donnybrook leaks dead "
      "reckoning about every player to everyone, so nobody is ever hidden "
      "from a coalition. Watchmen tracks the C/S pattern: detail only where "
      "attention demands it, and a growing hidden fraction collapses only "
      "slowly with coalition size — plus the short-lived random proxy as the "
      "one (rotating, verifiable) complete view.\n");
  return 0;
}
