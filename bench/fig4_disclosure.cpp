// Fig. 4 reproduction: information about honest players available to a
// coalition of colluding cheaters, under Client/Server (optimal baseline),
// Donnybrook, and Watchmen. 48-player game on the q3dm17-like map.
//
// Stacked categories (most to least informative): complete / frequent+DR /
// frequent only / DR only / infrequent only / nothing. A coalition pools
// all of its members' knowledge (worst case, as in the paper).
//
// Paper anchors (c = 4): Watchmen gives the coalition only infrequent
// updates for ~31 % of honest players and partial info for ~48 %;
// Donnybrook leaks DR about everyone (~65 % DR-only, the rest DR+frequent,
// <1 % frequent-only).

#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/exposure.hpp"
#include "bench_common.hpp"

using namespace watchmen;
using baseline::ExposureCategory;
using baseline::kNumExposureCategories;

int main() {
  bench::print_header("Fig. 4",
                      "Coalition information exposure: C/S vs Donnybrook vs Watchmen");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(48, 2400, 42);

  const interest::InterestConfig icfg;
  const core::ProxySchedule schedule(trace.seed, trace.n_players);

  std::vector<std::unique_ptr<baseline::ExposureModel>> models;
  models.push_back(std::make_unique<baseline::ClientServerExposure>(map));
  models.push_back(std::make_unique<baseline::DonnybrookExposure>(map, icfg));
  // Donnybrook in practice uses forwarder pools; the paper calls its
  // forwarder-free numbers a lower bound. Two relays per player:
  models.push_back(
      std::make_unique<baseline::DonnybrookExposure>(map, icfg, 2));
  models.push_back(std::make_unique<baseline::WatchmenExposure>(map, icfg, schedule));

  for (const auto& model : models) {
    std::printf("\n--- %s ---\n", model->name().c_str());
    std::printf("%-10s", "coalition");
    for (int c = 0; c < kNumExposureCategories; ++c) {
      std::printf("%10s", to_string(static_cast<ExposureCategory>(c)));
    }
    std::printf("\n");
    for (std::size_t coalition = 1; coalition <= 8; ++coalition) {
      const auto fractions =
          baseline::measure_coalition_exposure(*model, trace, coalition);
      std::printf("%-10zu", coalition);
      for (double f : fractions) std::printf("%9.1f%%", 100.0 * f);
      std::printf("\n");
    }
  }

  // The paper's headline comparison at a 4-cheater coalition.
  std::printf("\n--- paper anchors at coalition = 4 ---\n");
  const auto wm = baseline::measure_coalition_exposure(*models[3], trace, 4);
  const auto db = baseline::measure_coalition_exposure(*models[1], trace, 4);
  const double wm_min = wm[static_cast<int>(ExposureCategory::kInfreqOnly)] +
                        wm[static_cast<int>(ExposureCategory::kNothing)];
  const double wm_partial = wm[static_cast<int>(ExposureCategory::kFreqOnly)] +
                            wm[static_cast<int>(ExposureCategory::kDrOnly)] +
                            wm[static_cast<int>(ExposureCategory::kFreqPlusDr)];
  std::printf("watchmen: minimum info (infrequent-only) for %.0f%% of honest "
              "players (paper: ~31%%), partial info for %.0f%% (paper: ~48%%)\n",
              100 * wm_min, 100 * wm_partial);
  std::printf("donnybrook: DR-only for %.0f%% (paper: ~65%%), freq-only for "
              "%.1f%% (paper: <1%%), no player fully hidden\n",
              100 * db[static_cast<int>(ExposureCategory::kDrOnly)],
              100 * db[static_cast<int>(ExposureCategory::kFreqOnly)]);
  return 0;
}
