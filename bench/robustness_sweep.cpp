// Emits BENCH_robustness.json: protocol health swept across fault
// intensities (see DESIGN.md "Failure model & recovery").
//
// Each intensity runs the chaos-hardened config through the same recorded
// trace under a Gilbert–Elliott bursty-loss window tuned to that stationary
// loss rate, plus — at nonzero intensity — a mid-round proxy crash with no
// rejoin (the issue's acceptance scenario). Reported per intensity: update
// freshness (mean / p95 / post-heal tail), honest players flagged, detector
// report volume, reliability-layer work (retransmits, acks) and raw network
// drop counts. The acceptance block re-states the issue's bar at the 20 %
// point: post-heal tail age within 2x the fault-free baseline and zero
// honest players banned; the process exits nonzero when it fails.
//
// Usage: robustness_sweep [output.json]   (default ./BENCH_robustness.json)

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "game/map.hpp"
#include "game/trace.hpp"
#include "net/fault.hpp"

using namespace watchmen;
using namespace watchmen::core;

namespace {

constexpr std::size_t kPlayers = 16;
constexpr std::size_t kFrames = 600;
constexpr Frame kBurstBegin = 120;
constexpr Frame kBurstEnd = 280;   // heal; settle runs ~3 renewals after
constexpr Frame kTailMark = 440;   // post-heal measurement window start
constexpr Frame kCrashAt = 175;    // mid-round (rounds are 40 frames)

struct SweepPoint {
  double intensity = 0.0;  ///< target stationary loss inside the burst
  double mean_age = 0.0;
  double p95_age = 0.0;
  double tail_mean_age = 0.0;
  double post_heal_age_ratio = 0.0;
  std::size_t honest_flagged = 0;
  std::size_t total_reports = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t acks = 0;
  std::uint64_t net_sent = 0;
  std::uint64_t net_dropped = 0;
  double delivery_age_p99 = 0.0;  ///< ms, from the transport's delivery log
};

WatchmenConfig hardened_config() {
  WatchmenConfig cfg;
  cfg.reliable_control = true;
  cfg.proxy_failover_silence = 20;
  cfg.rate_loss_allowance = 0.30;
  cfg.starve_loss_allowance = 0.8;
  cfg.starve_floor = 0.15;
  return cfg;
}

/// Gilbert–Elliott chain whose stationary loss matches `intensity`,
/// holding the burst length scale fixed (p_bg = 0.4, 90 % loss when bad,
/// 2 % residual loss when good).
net::GilbertElliott ge_for(double intensity) {
  const double loss_good = 0.02, loss_bad = 0.9, p_bg = 0.4;
  const double pi_bad = (intensity - loss_good) / (loss_bad - loss_good);
  const double p_gb = p_bg * pi_bad / (1.0 - pi_bad);
  return {p_gb, p_bg, loss_good, loss_bad};
}

// IS-target staleness (per-frame age of held state) rather than delivery
// age: staleness keeps growing when loss or a dead proxy starves a stream,
// so it is the signal that actually degrades under faults and recovers
// after the heal.
double tail_mean(const WatchmenSession& s,
                 const std::vector<std::size_t>& marks) {
  double sum = 0.0;
  std::size_t n = 0;
  for (PlayerId p = 0; p < s.num_players(); ++p) {
    const auto& vals = s.peer(p).metrics().staleness_frames.values();
    for (std::size_t i = marks[p]; i < vals.size(); ++i) sum += vals[i];
    n += vals.size() - marks[p];
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

SweepPoint run_point(const game::GameTrace& trace, const game::GameMap& map,
                     double intensity) {
  SessionOptions opts;
  opts.watchmen = hardened_config();
  opts.net = NetProfile::kFixed;
  opts.fixed_latency_ms = 25.0;
  opts.loss_rate = 0.01;

  if (intensity > 0.0) {
    const ProxySchedule sched(opts.seed, trace.n_players,
                              opts.watchmen.renewal_frames);
    net::FaultPlan plan;
    plan.bursts.push_back(
        {time_of(kBurstBegin), time_of(kBurstEnd), ge_for(intensity)});
    plan.crashes.push_back({kCrashAt, sched.proxy_of(0, 4), -1});
    opts.faults = plan;
  }

  WatchmenSession s(trace, map, opts);
  s.run_frames(static_cast<std::size_t>(kTailMark));
  std::vector<std::size_t> marks(s.num_players());
  for (PlayerId p = 0; p < s.num_players(); ++p) {
    marks[p] = s.peer(p).metrics().staleness_frames.values().size();
  }
  s.run();

  SweepPoint pt;
  pt.intensity = intensity;
  Samples ages;
  for (PlayerId p = 0; p < s.num_players(); ++p) {
    for (double v : s.peer(p).metrics().staleness_frames.values()) ages.add(v);
  }
  pt.mean_age = ages.mean();
  pt.p95_age = ages.quantile(0.95);
  pt.tail_mean_age = tail_mean(s, marks);
  for (PlayerId p = 0; p < s.num_players(); ++p) {
    if (s.connected(p) && s.detector().flagged(p)) ++pt.honest_flagged;
    for (auto r : s.peer(p).metrics().retransmits_by_type) pt.retransmits += r;
    pt.acks += s.peer(p).metrics().acks_received;
  }
  pt.total_reports = s.detector().reports().size();
  const net::NetStats ns = s.network().stats();
  pt.net_sent = ns.sent;
  pt.net_dropped = ns.dropped;
  pt.delivery_age_p99 = ns.delivery_age_ms.quantile(0.99);
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_robustness.json";

  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig cfg;
  cfg.n_players = kPlayers;
  cfg.n_frames = kFrames;
  cfg.seed = 42;
  const game::GameTrace trace = game::record_session(map, cfg);

  const double intensities[] = {0.0, 0.1, 0.2, 0.4};
  std::vector<SweepPoint> points;
  for (const double x : intensities) {
    points.push_back(run_point(trace, map, x));
    SweepPoint& pt = points.back();
    pt.post_heal_age_ratio =
        points.front().tail_mean_age > 0.0
            ? pt.tail_mean_age / points.front().tail_mean_age
            : 0.0;
    std::printf(
        "loss %.0f%%: mean age %.2f, p95 %.2f, tail %.2f (%.2fx baseline), "
        "flagged %zu, reports %zu, retx %llu, dropped %llu/%llu, "
        "delivery p99 %.1f ms\n",
        pt.intensity * 100.0, pt.mean_age, pt.p95_age, pt.tail_mean_age,
        pt.post_heal_age_ratio, pt.honest_flagged, pt.total_reports,
        static_cast<unsigned long long>(pt.retransmits),
        static_cast<unsigned long long>(pt.net_dropped),
        static_cast<unsigned long long>(pt.net_sent), pt.delivery_age_p99);
  }

  // Issue acceptance, evaluated at the 20 % point.
  const SweepPoint& accept = points[2];
  const bool ratio_ok = accept.post_heal_age_ratio <= 2.0;
  const bool bans_ok = accept.honest_flagged == 0;

  obs::JsonWriter j;
  j.begin_object();
  bench::report_header(j, "BM_RobustnessSweep_16players", map.name(),
                       kPlayers, kFrames);
  j.key("burst_window_frames");
  j.begin_array();
  j.value(static_cast<std::uint64_t>(kBurstBegin));
  j.value(static_cast<std::uint64_t>(kBurstEnd));
  j.end_array();
  j.kv("proxy_crash_frame", static_cast<std::uint64_t>(kCrashAt));
  j.key("points");
  j.begin_array();
  for (const SweepPoint& pt : points) {
    j.begin_object();
    j.kv("burst_loss", pt.intensity);
    j.kv("mean_age_frames", pt.mean_age);
    j.kv("p95_age_frames", pt.p95_age);
    j.kv("post_heal_tail_age_frames", pt.tail_mean_age);
    j.kv("post_heal_age_ratio", pt.post_heal_age_ratio);
    j.kv("honest_flagged", pt.honest_flagged);
    j.kv("total_reports", pt.total_reports);
    j.kv("retransmits", pt.retransmits);
    j.kv("acks", pt.acks);
    j.kv("net_sent", pt.net_sent);
    j.kv("net_dropped", pt.net_dropped);
    j.kv("delivery_age_ms_p99", pt.delivery_age_p99);
    j.end_object();
  }
  j.end_array();
  j.key("acceptance");
  j.begin_object();
  j.kv("at_burst_loss", accept.intensity);
  j.kv("post_heal_age_ratio", accept.post_heal_age_ratio);
  j.kv("ratio_within_2x", ratio_ok);
  j.kv("honest_banned", accept.honest_flagged);
  j.kv("zero_honest_bans", bans_ok);
  j.end_object();
  j.end_object();
  if (!bench::write_report(out_path, j.take(), "robustness_sweep")) return 2;

  std::printf("acceptance at 20%%: ratio %.2fx (<= 2x: %s), honest banned "
              "%zu (== 0: %s) -> %s\n",
              accept.post_heal_age_ratio, ratio_ok ? "yes" : "NO",
              accept.honest_flagged, bans_ok ? "yes" : "NO", out_path);
  return ratio_ok && bans_ok ? 0 : 1;
}
