// Ablation: interest-management parameters — IS size (top-K) and vision
// cone half-angle. These trade rendering fidelity and bandwidth against
// information exposure (DESIGN.md §5): a bigger IS/cone means more players
// receive detailed information a cheater can pool.

#include <cstdio>

#include "baseline/exposure.hpp"
#include "bench_common.hpp"
#include "sim/bandwidth.hpp"

using namespace watchmen;

int main() {
  bench::print_header("Ablation", "IS size and vision-cone angle");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(48, 1200, 42);
  const core::ProxySchedule schedule(trace.seed, trace.n_players);
  const sim::WireSizes wire = sim::WireSizes::measure();

  std::printf("--- IS size (top-K), cone fixed at default ---\n");
  std::printf("%-6s %12s %14s %16s %14s\n", "K", "avg|IS|",
              "freq-exposed", "infreq-only", "upload kbps");
  std::printf("%-6s %12s %14s %16s %14s\n", "", "", "(coalition=4)",
              "(coalition=4)", "(n=48)");
  for (std::size_t k : {1, 3, 5, 8, 12}) {
    interest::InterestConfig cfg;
    cfg.is_size = k;
    const baseline::WatchmenExposure model(map, cfg, schedule);
    const auto frac = baseline::measure_coalition_exposure(model, trace, 4);
    const auto sizes = sim::measure_set_sizes(trace, map, cfg, 40);
    const double freq_exposed =
        frac[static_cast<int>(baseline::ExposureCategory::kFreqOnly)] +
        frac[static_cast<int>(baseline::ExposureCategory::kFreqPlusDr)] +
        frac[static_cast<int>(baseline::ExposureCategory::kComplete)];
    std::printf("%-6zu %12.2f %13.1f%% %15.1f%% %14.0f\n", k, sizes.avg_is,
                100 * freq_exposed,
                100 * frac[static_cast<int>(baseline::ExposureCategory::kInfreqOnly)],
                sim::watchmen_upload_kbps(48, sizes, wire));
  }

  std::printf("\n--- vision-cone half-angle, K = 5 ---\n");
  std::printf("%-10s %12s %14s %16s\n", "angle", "avg|VS|", "DR-exposed",
              "infreq-only");
  for (double deg : {45.0, 60.0, 75.0, 90.0, 120.0}) {
    interest::InterestConfig cfg;
    cfg.vision.half_angle = deg * 3.14159265358979 / 180.0;
    const baseline::WatchmenExposure model(map, cfg, schedule);
    const auto frac = baseline::measure_coalition_exposure(model, trace, 4);
    const auto sizes = sim::measure_set_sizes(trace, map, cfg, 40);
    const double dr_exposed =
        frac[static_cast<int>(baseline::ExposureCategory::kDrOnly)] +
        frac[static_cast<int>(baseline::ExposureCategory::kFreqPlusDr)];
    std::printf("±%-9.0f %12.1f %13.1f%% %15.1f%%\n", deg,
                sizes.vs_fraction * 47.0, 100 * dr_exposed,
                100 * frac[static_cast<int>(baseline::ExposureCategory::kInfreqOnly)]);
  }

  std::printf("\n-> K=5 (the paper's choice, matching human attention span) "
              "keeps frequent exposure low; the ±60°+slack cone bounds the "
              "DR leak while covering the real field of view\n");
  return 0;
}
