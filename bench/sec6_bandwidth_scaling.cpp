// §II/§VI reproduction: bandwidth scaling per architecture, before and
// after the wire-format overhaul (per-link batching + ack-anchored deltas +
// quantized guidance + subscriber diffs).
//
// Paper anchors: centralized Quake III costs ~120·n kbps at the server;
// a naive P2P design grows per-player upload linearly in n (quadratic in
// total); multi-resolution schemes (Donnybrook, Watchmen) keep per-player
// upload nearly flat, which is what lets the game scale to hundreds of
// players on asymmetric consumer uplinks.
//
// Two measurements feed BENCH_bandwidth.json:
//  * packet-level old-vs-new sessions at 64/128/256 players (the overhaul's
//    headline: >= 30 % fewer bytes/player/s at 256);
//  * the analytic per-architecture curve at 64..1024 players, with the v2
//    wire parameterized by the measured mean batch size (the flat-bandwidth
//    claim: watchmen upload within 2x from 64 to 1024).
//
// The emitted report doubles as a CI regression gate:
//   sec6_bandwidth_scaling out.json [--baseline committed.json]
// exits nonzero when the new wire's measured bytes/player/s at 256 players
// regresses more than 5 % over the committed baseline.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/bandwidth.hpp"

using namespace watchmen;

namespace {

constexpr double kMaxRegression = 0.05;  // CI gate: <= 5 % vs baseline

/// Player counts measured packet-level (sessions get expensive fast; the
/// analytic model, cross-checked against these, carries the 512/1024 tail).
constexpr std::size_t kMeasuredCounts[] = {64, 128, 256};
constexpr std::size_t kMeasuredFrames = 240;  // 12 simulated seconds

/// Other-set beacon budget at scale: each proxy forwards a beacon to at most
/// this many Others per guidance period, rotating round-robin. At 256
/// players a receiver still refreshes every ~4 s — well inside the position
/// checks' dead-reckoning slack — and the one O(n) upload term goes flat.
constexpr std::uint32_t kOtherBudget = 64;

/// The overhaul flags, as the shipped configuration enables them.
core::WatchmenConfig overhaul_config() {
  core::WatchmenConfig c;
  c.batching = true;
  c.delta_updates = true;  // ack_anchored rides the delta stream
  c.ack_anchored = true;
  c.quantized_guidance = true;
  c.subscriber_diffs = true;
  c.compact_headers = true;
  c.other_update_budget = kOtherBudget;
  return c;
}

/// Pulls "key": <number> out of a committed report. The reports are written
/// by obs::JsonWriter with stable formatting, so a textual scan is enough —
/// no JSON parser dependency for a CI gate.
bool scan_baseline(const std::string& path, const std::string& key,
                   double& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  const std::string needle = "\"" + key + "\":";
  const auto pos = doc.find(needle);
  if (pos == std::string::npos) return false;
  out = std::strtod(doc.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_bandwidth.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      out_path = argv[i];
    }
  }

  bench::print_header("Sec. VI", "Per-player upload bandwidth vs player count");
  const game::GameMap map = game::make_longest_yard();

  // Set sizes measured from the standard 48-player trace, extrapolated by
  // density for other n.
  const game::GameTrace trace48 = bench::standard_trace(48, 1200, 42);
  const interest::InterestConfig icfg;
  const sim::SetSizeStats sizes = sim::measure_set_sizes(trace48, map, icfg);
  const sim::WireSizes wire = sim::WireSizes::measure();

  std::printf("measured on the 48-player trace: avg IS=%.2f, VS=%.1f%% of "
              "others, PVS=%.1f%% of others\n",
              sizes.avg_is, 100 * sizes.vs_fraction, 100 * sizes.pvs_fraction);
  std::printf("wire sizes (bits incl. UDP/IP): state=%.0f anchored=%.0f "
              "pos=%.0f/%.0fc guidance=%.0f/%.0fq subscribe=%.0f/%.0fc "
              "subdiff=%.0f\n\n",
              wire.state_update, wire.state_anchored, wire.position_update,
              wire.position_update_c, wire.guidance, wire.guidance_q,
              wire.subscribe, wire.subscribe_c, wire.subscriber_diff);

  // --- packet-level old vs new wire ---------------------------------------
  std::printf("packet-level sessions, %zu frames, King latency, 1%% loss:\n",
              kMeasuredFrames);
  std::printf("%-6s %16s %16s %12s %10s\n", "n", "old (B/player/s)",
              "new (B/player/s)", "reduction", "avg batch");
  std::vector<sim::MeasuredBandwidth> olds, news;
  double avg_batch = 1.0;
  for (const std::size_t n : kMeasuredCounts) {
    const game::GameTrace t =
        bench::standard_trace(n, kMeasuredFrames, 42 + n);
    core::SessionOptions opts;
    opts.net = core::NetProfile::kKing;
    opts.loss_rate = 0.01;
    const sim::MeasuredBandwidth before = sim::watchmen_measured(t, map, opts);
    opts.watchmen = overhaul_config();
    const sim::MeasuredBandwidth after = sim::watchmen_measured(t, map, opts);
    olds.push_back(before);
    news.push_back(after);
    avg_batch = after.avg_batch_size;  // largest count's mean feeds the model
    std::printf("%-6zu %16.0f %16.0f %11.1f%% %10.2f\n", n,
                before.bytes_per_player_s, after.bytes_per_player_s,
                100.0 * (1.0 - after.bytes_per_player_s /
                                   before.bytes_per_player_s),
                after.avg_batch_size);
  }
  const double reduction_256 =
      1.0 - news.back().bytes_per_player_s / olds.back().bytes_per_player_s;

  // --- analytic curve to 1024 players -------------------------------------
  // The v2 model takes its knobs from measurement, not assumption: the mean
  // batch size from the 256-player session above, the configured beacon
  // budget, and the vision-set saturation point from the densest trace we
  // simulate packet-level (on a fixed-size map the count of actually
  // visible players stops growing with density; extrapolating the sparse
  // 48-player fraction linearly to 1024 would charge for players nobody
  // can see).
  const game::GameTrace dense =
      bench::standard_trace(256, kMeasuredFrames, 42 + 256);
  const sim::SetSizeStats dense_sizes = sim::measure_set_sizes(dense, map, icfg);
  sim::WireV2Params v2p;
  v2p.avg_batch = avg_batch;
  v2p.other_budget = kOtherBudget;
  v2p.vs_cap = dense_sizes.vs_fraction * 255.0;
  std::printf("\nanalytic model (kbps/player; v2 = overhauled wire, batch "
              "%.2f, beacon budget %u, VS cap %.1f):\n",
              avg_batch, kOtherBudget, v2p.vs_cap);
  std::printf("%-6s %12s %12s %12s %12s %16s\n", "n", "naive-P2P",
              "donnybrook", "watchmen", "watchmen-v2", "C/S server total");
  const std::size_t counts[] = {64, 128, 256, 512, 1024};
  std::vector<double> v2_kbps;
  for (const std::size_t n : counts) {
    const double v2 = sim::watchmen_upload_kbps_v2(n, sizes, wire, v2p);
    v2_kbps.push_back(v2);
    std::printf("%-6zu %12.0f %12.0f %12.0f %12.0f %16.0f\n", n,
                sim::naive_p2p_upload_kbps(n, wire),
                sim::donnybrook_upload_kbps(n, sizes, wire),
                sim::watchmen_upload_kbps(n, sizes, wire), v2,
                sim::client_server_server_kbps(n, sizes, wire));
  }
  const double flatness = v2_kbps.back() / v2_kbps.front();
  std::printf("\nflat-bandwidth claim: watchmen-v2 upload grows %.2fx from "
              "64 to 1024 players (must stay within 2x)\n",
              flatness);
  std::printf("overhaul at 256 players: %.1f%% fewer bytes/player/s than the "
              "seed wire (gate: >= 30%%)\n",
              100.0 * reduction_256);

  // --- report -------------------------------------------------------------
  obs::JsonWriter j;
  j.begin_object();
  bench::report_header(j, "BM_BandwidthScaling", map.name(), 256,
                       kMeasuredFrames);
  j.kv("avg_is", sizes.avg_is);
  j.kv("vs_fraction", sizes.vs_fraction);
  j.kv("measured_avg_batch_size", avg_batch);
  j.kv("other_update_budget", static_cast<double>(kOtherBudget));
  j.kv("vs_cap", v2p.vs_cap);
  j.key("measured_bytes_per_player_s");
  j.begin_object();
  for (std::size_t i = 0; i < std::size(kMeasuredCounts); ++i) {
    j.key(std::to_string(kMeasuredCounts[i]));
    j.begin_object();
    j.kv("old_wire", olds[i].bytes_per_player_s);
    j.kv("new_wire", news[i].bytes_per_player_s);
    j.end_object();
  }
  j.end_object();
  j.kv("new_wire_bytes_per_player_s_256", news.back().bytes_per_player_s);
  j.kv("reduction_at_256", reduction_256);
  j.kv("reduction_at_256_at_least_30pct", reduction_256 >= 0.30);
  j.key("analytic_kbps_per_player");
  j.begin_object();
  for (std::size_t i = 0; i < std::size(counts); ++i) {
    const std::size_t n = counts[i];
    j.key(std::to_string(n));
    j.begin_object();
    j.kv("naive_p2p", sim::naive_p2p_upload_kbps(n, wire));
    j.kv("donnybrook", sim::donnybrook_upload_kbps(n, sizes, wire));
    j.kv("watchmen", sim::watchmen_upload_kbps(n, sizes, wire));
    j.kv("watchmen_v2", v2_kbps[i]);
    j.kv("client_server_total", sim::client_server_server_kbps(n, sizes, wire));
    j.end_object();
  }
  j.end_object();
  j.kv("flatness_64_to_1024", flatness);
  j.kv("flatness_within_2x", flatness <= 2.0);
  j.end_object();
  if (!bench::write_report(out_path, j.take(), "sec6_bandwidth_scaling")) {
    return 2;
  }
  std::printf("-> %s\n", out_path);

  // --- CI regression gate --------------------------------------------------
  int rc = 0;
  if (!(reduction_256 >= 0.30)) {
    std::printf("FAIL: reduction at 256 players below 30%%\n");
    rc = 1;
  }
  if (!(flatness <= 2.0)) {
    std::printf("FAIL: watchmen-v2 upload not within 2x from 64 to 1024\n");
    rc = 1;
  }
  if (baseline_path) {
    double committed = 0.0;
    if (!scan_baseline(baseline_path, "new_wire_bytes_per_player_s_256",
                       committed)) {
      std::printf("FAIL: cannot read baseline %s\n", baseline_path);
      rc = 1;
    } else {
      const double ratio = news.back().bytes_per_player_s / committed;
      std::printf("regression gate: %.0f B/player/s vs committed %.0f "
                  "(%+.1f%%, limit +%.0f%%)\n",
                  news.back().bytes_per_player_s, committed,
                  100.0 * (ratio - 1.0), 100.0 * kMaxRegression);
      if (ratio > 1.0 + kMaxRegression) {
        std::printf("FAIL: bytes/player/s at 256 players regressed more "
                    "than 5%% vs %s\n",
                    baseline_path);
        rc = 1;
      }
    }
  }
  return rc;
}
