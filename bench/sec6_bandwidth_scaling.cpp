// §II/§VI reproduction: bandwidth scaling per architecture.
//
// Paper anchors: centralized Quake III costs ~120·n kbps at the server;
// a naive P2P design grows per-player upload linearly in n (quadratic in
// total); multi-resolution schemes (Donnybrook, Watchmen) keep per-player
// upload nearly flat, which is what lets the game scale to hundreds of
// players on asymmetric consumer uplinks.

#include <cstdio>

#include "bench_common.hpp"
#include "sim/bandwidth.hpp"

using namespace watchmen;

int main() {
  bench::print_header("Sec. VI", "Per-player upload bandwidth vs player count");
  const game::GameMap map = game::make_longest_yard();

  // Set sizes measured from the standard 48-player trace, extrapolated by
  // density for other n.
  const game::GameTrace trace = bench::standard_trace(48, 1200, 42);
  const interest::InterestConfig icfg;
  const sim::SetSizeStats sizes = sim::measure_set_sizes(trace, map, icfg);
  const sim::WireSizes wire = sim::WireSizes::measure();

  std::printf("measured on the 48-player trace: avg IS=%.2f, VS=%.1f%% of "
              "others, PVS=%.1f%% of others\n",
              sizes.avg_is, 100 * sizes.vs_fraction, 100 * sizes.pvs_fraction);
  std::printf("wire sizes (bits incl. UDP/IP): state=%.0f pos=%.0f guidance=%.0f "
              "subscribe=%.0f\n\n",
              wire.state_update, wire.position_update, wire.guidance,
              wire.subscribe);

  std::printf("%-6s %14s %14s %14s %18s\n", "n", "naive-P2P", "donnybrook",
              "watchmen", "C/S server total");
  std::printf("%-6s %14s %14s %14s %18s\n", "", "(kbps/player)", "(kbps/player)",
              "(kbps/player)", "(kbps)");
  for (std::size_t n : {8, 16, 32, 48, 64, 128, 256, 512}) {
    std::printf("%-6zu %14.0f %14.0f %14.0f %18.0f\n", n,
                sim::naive_p2p_upload_kbps(n, wire),
                sim::donnybrook_upload_kbps(n, sizes, wire),
                sim::watchmen_upload_kbps(n, sizes, wire),
                sim::client_server_server_kbps(n, sizes, wire));
  }

  std::printf("\nC/S sanity: server total at n=48 is %.0f kbps = %.0f·n kbps "
              "(paper: ~120·n kbps for centralized Quake III)\n",
              sim::client_server_server_kbps(48, sizes, wire),
              sim::client_server_server_kbps(48, sizes, wire) / 48.0);

  // Cross-check the analytic Watchmen number against the packet simulation.
  core::SessionOptions opts;
  opts.net = core::NetProfile::kKing;
  opts.loss_rate = 0.01;
  const double measured = sim::watchmen_measured_kbps(trace, map, opts);
  std::printf("\npacket-level simulation at n=48: %.0f kbps/player "
              "(analytic steady-state floor: %.0f kbps/player)\n",
              measured, sim::watchmen_upload_kbps(48, sizes, wire));
  std::printf("the gap is the cost of subscriber retention: proxies keep "
              "fanning out to every subscriber of the last 2 s (the IS union "
              "over the retention window exceeds the instantaneous top-5), "
              "trading bandwidth for zero re-subscription latency (§VI)\n");
  std::printf("\n-> naive P2P upload grows ~linearly per player (quadratic "
              "total); Watchmen stays within consumer uplinks at hundreds of "
              "players, paying a modest premium over Donnybrook for the "
              "signed 2-hop indirection\n");
  return 0;
}
