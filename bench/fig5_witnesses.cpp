// Fig. 5 reproduction: levels of information about cheaters available to
// honest witnesses, as a function of coalition size. For a cheater in a
// coalition of c (out of 48), we count the honest players that (a) act as
// his proxy (complete information), (b) hold him in their IS (frequent
// updates), (c) hold him in their VS (dead reckoning).
//
// Paper anchors: at c = 4, a cheater gets an honest proxy in ~94 % of
// frames (1 - 3/47) and ~10 honest players witness his actions (~4 via
// frequent updates, ~6 via dead reckoning).

#include <cstdio>

#include "baseline/exposure.hpp"
#include "bench_common.hpp"

using namespace watchmen;

int main() {
  bench::print_header("Fig. 5", "Honest witnesses per cheater vs coalition size");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(48, 2400, 42);
  const interest::InterestConfig icfg;
  const core::ProxySchedule schedule(trace.seed, trace.n_players);

  std::printf("%-10s %16s %16s %16s\n", "coalition", "honest-proxy",
              "IS-witnesses", "VS-witnesses");
  for (std::size_t c = 1; c <= 8; ++c) {
    const auto w =
        baseline::measure_witnesses(trace, map, icfg, schedule, c);
    const double expected_proxy =
        1.0 - static_cast<double>(c - 1) / static_cast<double>(trace.n_players - 1);
    std::printf("%-10zu %10.3f (th %.3f) %12.2f %16.2f\n", c, w.proxies,
                expected_proxy, w.is_witnesses, w.vs_witnesses);
  }

  const auto w4 = baseline::measure_witnesses(trace, map, icfg, schedule, 4);
  std::printf("\npaper anchors at c=4: honest proxy %.0f%% of the time "
              "(paper: 94%%), %.1f witnesses total (paper: ~10; ~4 IS + ~6 VS)\n",
              100.0 * w4.proxies, w4.is_witnesses + w4.vs_witnesses);
  return 0;
}
