// Ablation: upload-capacity heterogeneity and fairness (paper §VI).
//
// The paper's argument: because *all* players' traffic is processed through
// proxies, the scheme is fair to low-bandwidth players — and when
// necessary, the verifiable random selection can exclude weak nodes from
// the proxy pool so they only ever pay the cheap player-role upload (one
// copy of each update to their proxy), while powerful nodes shoulder the
// fan-out.
//
// We cap a quarter of the players at a constrained uplink and measure
// update freshness with (a) a uniform proxy pool and (b) the weak nodes
// removed from the pool.

#include <cstdio>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "util/stats.hpp"

using namespace watchmen;

namespace {

struct Outcome {
  double median = 0.0;
  double p99 = 0.0;
  double late = 0.0;  ///< fraction >= 3 frames (the playability bound)
};

Outcome run(const game::GameTrace& trace, const game::GameMap& map,
            double weak_bps, bool exclude_weak, std::size_t n_weak) {
  core::SessionOptions opts;
  opts.net = core::NetProfile::kKing;
  opts.loss_rate = 0.01;
  for (PlayerId p = 0; p < n_weak; ++p) {
    opts.upload_bps.emplace_back(p, weak_bps);
    if (exclude_weak) opts.pool_weights.emplace_back(p, 0.0);
  }
  core::WatchmenSession session(trace, map, opts);
  session.run();

  const Samples ages = session.merged_update_ages();
  Outcome out;
  out.median = ages.quantile(0.5);
  out.p99 = ages.quantile(0.99);
  double late = 0;
  for (double v : ages.values()) late += (v >= 3.0);
  out.late = late / static_cast<double>(ages.count());
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "Upload heterogeneity: weak nodes in / out of the proxy pool");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(32, 800, 42);
  constexpr std::size_t kWeak = 8;

  std::printf("%-28s %10s %8s %12s\n", "configuration", "median", "p99",
              ">=3fr late");
  const Outcome base = run(trace, map, 0.0, false, 0);
  std::printf("%-28s %8.1f fr %5.1f fr %11.2f%%\n", "all uplinks unconstrained",
              base.median, base.p99, 100 * base.late);

  for (double kbps : {600.0, 300.0, 150.0}) {
    const Outcome in_pool = run(trace, map, kbps * 1000.0, false, kWeak);
    const Outcome out_pool = run(trace, map, kbps * 1000.0, true, kWeak);
    std::printf("%2.0f kbps x%zu, in pool        %8.1f fr %5.1f fr %11.2f%%\n",
                kbps, kWeak, in_pool.median, in_pool.p99, 100 * in_pool.late);
    std::printf("%2.0f kbps x%zu, EXCLUDED       %8.1f fr %5.1f fr %11.2f%%\n",
                kbps, kWeak, out_pool.median, out_pool.p99,
                100 * out_pool.late);
  }

  std::printf("\n-> a constrained node serving as proxy queues its fan-out and "
              "ages the whole game's updates; excluding weak nodes from the "
              "pool (verifiable, weight-0 in the shared schedule) restores "
              "the freshness of the unconstrained baseline, because the "
              "player role itself only uploads one copy of each update.\n");
  return 0;
}
