// Emits BENCH_misbehavior.json: the misbehavior/reputation engine under
// reporter-layer attack (DESIGN.md §5h).
//
// Three scenarios, swept across attacker fraction with several seeds each:
//
//  * collusion — a witness clique floods fabricated reports framing one
//    honest victim. Witness evidence only corroborates, so the gated
//    false-positive rate (honest players losing standing) must stay <= 1 %
//    at a 30 % clique. A bold variant escalates to forged proxy-vantage
//    claims; it is reported (not gated) to show the kFalseAccusation
//    rebound discouraging the clique itself.
//  * sybil — a Sybil swarm smears the honest population while one genuine
//    speed-hacker plays. The noise must not drown real evidence: the gated
//    false-negative rate (runs where the cheater keeps good standing) must
//    stay <= 5 % at a 20 % swarm.
//  * wash — a speed-hacker crashes and rejoins to launder its score. The
//    frozen-standing + silence-only-refund rules must leave standing within
//    one penalty unit of (a) the pre-crash score and (b) a no-crash control
//    run with the identical cheat schedule.
//
// Exits nonzero when any acceptance gate fails (CI runs this).
//
// Usage: misbehavior_sweep [output.json]  (default ./BENCH_misbehavior.json)

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "cheat/cheats.hpp"
#include "core/session.hpp"
#include "game/map.hpp"
#include "game/trace.hpp"
#include "net/fault.hpp"
#include "reputation/misbehavior_engine.hpp"

using namespace watchmen;
using namespace watchmen::core;

namespace {

constexpr std::size_t kPlayers = 24;
constexpr std::size_t kFrames = 600;  // 15 proxy rounds = 15 epochs
constexpr std::uint64_t kSeeds[] = {4242, 4243, 4244};
constexpr Frame kCrashAt = 300;
constexpr Frame kRejoinAt = 400;
/// "One penalty unit": a full-severity conviction of the offense being
/// laundered (position violations for the wash cheat).
constexpr double kWashUnit = reputation::penalty::kPosition;

SessionOptions base_options(std::uint64_t seed) {
  SessionOptions opts;
  opts.seed = seed;
  opts.net = NetProfile::kFixed;
  opts.fixed_latency_ms = 25.0;
  opts.loss_rate = 0.01;
  opts.misbehavior_enforcement = true;  // exercise the full standing path
  return opts;
}

std::size_t clique_size(double fraction) {
  return static_cast<std::size_t>(fraction * kPlayers + 0.5);
}

// ------------------------------------------------------------- collusion

struct CollusionPoint {
  double fraction = 0.0;
  bool claim_proxy = false;
  std::size_t runs = 0;
  std::size_t honest_total = 0;       ///< honest players x runs
  std::size_t honest_discouraged = 0; ///< engine FP events
  double victim_score_mean = 0.0;
  double clique_score_mean = 0.0;
  std::uint64_t forged_vantage = 0;

  double fp_rate() const {
    return honest_total == 0 ? 0.0
                             : static_cast<double>(honest_discouraged) /
                                   static_cast<double>(honest_total);
  }
};

CollusionPoint run_collusion(const game::GameTrace& trace,
                             const game::GameMap& map, double fraction,
                             bool claim_proxy) {
  CollusionPoint pt;
  pt.fraction = fraction;
  pt.claim_proxy = claim_proxy;
  const std::size_t k = clique_size(fraction);
  const PlayerId victim = 0;

  for (const std::uint64_t seed : kSeeds) {
    std::vector<std::unique_ptr<cheat::CollusionFrameCheat>> cheats;
    std::unordered_map<PlayerId, Misbehavior*> mbs;
    for (std::size_t i = 0; i < k; ++i) {
      const PlayerId p = static_cast<PlayerId>(kPlayers - 1 - i);
      cheats.push_back(std::make_unique<cheat::CollusionFrameCheat>(
          seed + i, /*rate=*/0.4, victim, claim_proxy));
      mbs[p] = cheats.back().get();
    }

    WatchmenSession s(trace, map, base_options(seed), mbs);
    s.run();

    const reputation::MisbehaviorEngine& eng = s.misbehavior();
    ++pt.runs;
    double clique_sum = 0.0;
    for (PlayerId p = 0; p < kPlayers; ++p) {
      const bool in_clique = mbs.count(p) != 0;
      if (in_clique) {
        clique_sum += eng.score(p);
        continue;
      }
      ++pt.honest_total;
      if (eng.standing(p) != reputation::Standing::kGood) {
        ++pt.honest_discouraged;
      }
    }
    pt.victim_score_mean += eng.score(victim);
    pt.clique_score_mean += k ? clique_sum / static_cast<double>(k) : 0.0;
    pt.forged_vantage += eng.forged_vantage_reports();
  }
  pt.victim_score_mean /= static_cast<double>(pt.runs);
  pt.clique_score_mean /= static_cast<double>(pt.runs);
  return pt;
}

// ----------------------------------------------------------------- sybil

struct SybilPoint {
  double fraction = 0.0;
  std::size_t runs = 0;
  std::size_t cheater_missed = 0;  ///< runs where the real cheater stayed kGood
  std::size_t honest_total = 0;
  std::size_t honest_discouraged = 0;
  double cheater_score_mean = 0.0;

  double fn_rate() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(cheater_missed) /
                           static_cast<double>(runs);
  }
  double fp_rate() const {
    return honest_total == 0 ? 0.0
                             : static_cast<double>(honest_discouraged) /
                                   static_cast<double>(honest_total);
  }
};

SybilPoint run_sybil(const game::GameTrace& trace, const game::GameMap& map,
                     double fraction) {
  SybilPoint pt;
  pt.fraction = fraction;
  const std::size_t k = clique_size(fraction);
  const PlayerId cheater = 0;

  for (const std::uint64_t seed : kSeeds) {
    // Sybils smear the honest population (not the cheater — smearing it
    // would only corroborate the genuine evidence).
    std::vector<PlayerId> targets;
    for (PlayerId p = 1; p < kPlayers - k; ++p) targets.push_back(p);

    cheat::SpeedHackCheat hack(seed, /*rate=*/0.10, /*speed_factor=*/6.0);
    std::vector<std::unique_ptr<cheat::SybilSwarmCheat>> sybils;
    std::unordered_map<PlayerId, Misbehavior*> mbs{{cheater, &hack}};
    for (std::size_t i = 0; i < k; ++i) {
      const PlayerId p = static_cast<PlayerId>(kPlayers - 1 - i);
      sybils.push_back(std::make_unique<cheat::SybilSwarmCheat>(
          seed + i, /*rate=*/0.05, targets, /*forge_proxy_vantage=*/0.25));
      mbs[p] = sybils.back().get();
    }

    WatchmenSession s(trace, map, base_options(seed), mbs);
    s.run();

    const reputation::MisbehaviorEngine& eng = s.misbehavior();
    ++pt.runs;
    if (eng.standing(cheater) == reputation::Standing::kGood) {
      ++pt.cheater_missed;
    }
    pt.cheater_score_mean += eng.score(cheater);
    for (const PlayerId p : targets) {
      ++pt.honest_total;
      if (eng.standing(p) != reputation::Standing::kGood) {
        ++pt.honest_discouraged;
      }
    }
  }
  pt.cheater_score_mean /= static_cast<double>(pt.runs);
  return pt;
}

// ------------------------------------------------------------------ wash

struct WashOutcome {
  std::size_t runs = 0;
  double pre_crash_score_mean = 0.0;
  double post_rejoin_score_mean = 0.0;
  double wash_end_score_mean = 0.0;
  double control_end_score_mean = 0.0;
  double max_laundered_vs_pre = 0.0;      ///< max(pre - post_rejoin)
  double max_laundered_vs_control = 0.0;  ///< max(control_end - wash_end)
};

WashOutcome run_wash(const game::GameTrace& trace, const game::GameMap& map) {
  WashOutcome out;
  const PlayerId cheater = 0;

  for (const std::uint64_t seed : kSeeds) {
    cheat::RatingWashCheat wash_cheat(seed, /*rate=*/0.15,
                                      /*speed_factor=*/6.0, kCrashAt);
    std::unordered_map<PlayerId, Misbehavior*> mbs{{cheater, &wash_cheat}};

    SessionOptions opts = base_options(seed);
    opts.faults.crashes.push_back({kCrashAt, cheater, kRejoinAt});
    WatchmenSession s(trace, map, opts, mbs);
    s.run_frames(static_cast<std::size_t>(kCrashAt));
    const double pre = s.misbehavior().score(cheater);
    s.run_frames(static_cast<std::size_t>(kRejoinAt - kCrashAt + 1));
    const double post = s.misbehavior().score(cheater);
    s.run();
    const double wash_end = s.misbehavior().score(cheater);

    // Control: identical cheat schedule, no crash — the wash run must not
    // end better off than this.
    cheat::RatingWashCheat control_cheat(seed, 0.15, 6.0, kCrashAt);
    std::unordered_map<PlayerId, Misbehavior*> cmbs{{cheater, &control_cheat}};
    WatchmenSession c(trace, map, base_options(seed), cmbs);
    c.run();
    const double control_end = c.misbehavior().score(cheater);

    ++out.runs;
    out.pre_crash_score_mean += pre;
    out.post_rejoin_score_mean += post;
    out.wash_end_score_mean += wash_end;
    out.control_end_score_mean += control_end;
    out.max_laundered_vs_pre =
        std::max(out.max_laundered_vs_pre, pre - post);
    out.max_laundered_vs_control =
        std::max(out.max_laundered_vs_control, control_end - wash_end);
  }
  const double n = static_cast<double>(out.runs);
  out.pre_crash_score_mean /= n;
  out.post_rejoin_score_mean /= n;
  out.wash_end_score_mean /= n;
  out.control_end_score_mean /= n;
  return out;
}

void write_collusion_point(obs::JsonWriter& j, const CollusionPoint& pt) {
  j.begin_object();
  j.kv("attacker_fraction", pt.fraction);
  j.kv("claim_proxy_vantage", pt.claim_proxy);
  j.kv("runs", pt.runs);
  j.kv("honest_total", pt.honest_total);
  j.kv("honest_discouraged", pt.honest_discouraged);
  j.kv("fp_rate", pt.fp_rate());
  j.kv("victim_score_mean", pt.victim_score_mean);
  j.kv("clique_score_mean", pt.clique_score_mean);
  j.kv("forged_vantage_reports", pt.forged_vantage);
  j.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_misbehavior.json";

  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig cfg;
  cfg.n_players = kPlayers;
  cfg.n_frames = kFrames;
  cfg.seed = 42;
  const game::GameTrace trace = game::record_session(map, cfg);

  const double fractions[] = {0.1, 0.2, 0.3, 0.4};

  std::vector<CollusionPoint> collusion;
  for (const double x : fractions) {
    collusion.push_back(run_collusion(trace, map, x, /*claim_proxy=*/false));
    const CollusionPoint& pt = collusion.back();
    std::printf("collusion %2.0f%%: fp %.4f, victim score %.1f, clique score "
                "%.1f\n",
                x * 100.0, pt.fp_rate(), pt.victim_score_mean,
                pt.clique_score_mean);
  }
  // Bold variant at the gated fraction: forged proxy vantage, shown to
  // rebound on the clique (informational).
  const CollusionPoint bold =
      run_collusion(trace, map, 0.3, /*claim_proxy=*/true);
  std::printf("collusion 30%% (forged vantage): fp %.4f, victim %.1f, clique "
              "%.1f, forged reports %llu\n",
              bold.fp_rate(), bold.victim_score_mean, bold.clique_score_mean,
              static_cast<unsigned long long>(bold.forged_vantage));

  std::vector<SybilPoint> sybil;
  for (const double x : fractions) {
    if (x > 0.3) break;  // beyond 30 % sybils the pool floor dominates
    sybil.push_back(run_sybil(trace, map, x));
    const SybilPoint& pt = sybil.back();
    std::printf("sybil %2.0f%%: fn %.4f, fp %.4f, cheater score %.1f\n",
                x * 100.0, pt.fn_rate(), pt.fp_rate(), pt.cheater_score_mean);
  }

  const WashOutcome wash = run_wash(trace, map);
  std::printf("wash: pre %.1f, post-rejoin %.1f, end %.1f vs control %.1f "
              "(laundered: %.1f vs pre, %.1f vs control)\n",
              wash.pre_crash_score_mean, wash.post_rejoin_score_mean,
              wash.wash_end_score_mean, wash.control_end_score_mean,
              wash.max_laundered_vs_pre, wash.max_laundered_vs_control);

  // Acceptance gates (ISSUE 8).
  const CollusionPoint& fp_pt = collusion[2];  // 30 % clique
  const SybilPoint& fn_pt = sybil[1];          // 20 % swarm
  const bool fp_ok = fp_pt.fp_rate() <= 0.01;
  const bool fn_ok = fn_pt.fn_rate() <= 0.05;
  const bool wash_ok = wash.max_laundered_vs_pre <= kWashUnit &&
                       wash.max_laundered_vs_control <= kWashUnit;

  obs::JsonWriter j;
  j.begin_object();
  bench::report_header(j, "BM_MisbehaviorSweep_24players", map.name(),
                       kPlayers, kFrames);
  j.kv("seeds_per_point", std::size(kSeeds));
  j.key("collusion");
  j.begin_array();
  for (const CollusionPoint& pt : collusion) write_collusion_point(j, pt);
  write_collusion_point(j, bold);
  j.end_array();
  j.key("sybil");
  j.begin_array();
  for (const SybilPoint& pt : sybil) {
    j.begin_object();
    j.kv("attacker_fraction", pt.fraction);
    j.kv("runs", pt.runs);
    j.kv("fn_rate", pt.fn_rate());
    j.kv("fp_rate", pt.fp_rate());
    j.kv("cheater_score_mean", pt.cheater_score_mean);
    j.kv("honest_discouraged", pt.honest_discouraged);
    j.end_object();
  }
  j.end_array();
  j.key("wash");
  j.begin_object();
  j.kv("crash_frame", static_cast<std::uint64_t>(kCrashAt));
  j.kv("rejoin_frame", static_cast<std::uint64_t>(kRejoinAt));
  j.kv("pre_crash_score_mean", wash.pre_crash_score_mean);
  j.kv("post_rejoin_score_mean", wash.post_rejoin_score_mean);
  j.kv("wash_end_score_mean", wash.wash_end_score_mean);
  j.kv("control_end_score_mean", wash.control_end_score_mean);
  j.kv("max_laundered_vs_pre", wash.max_laundered_vs_pre);
  j.kv("max_laundered_vs_control", wash.max_laundered_vs_control);
  j.end_object();
  j.key("acceptance");
  j.begin_object();
  j.kv("fp_rate_at_30pct_clique", fp_pt.fp_rate());
  j.kv("fp_within_1pct", fp_ok);
  j.kv("fn_rate_at_20pct_sybil", fn_pt.fn_rate());
  j.kv("fn_within_5pct", fn_ok);
  j.kv("wash_penalty_unit", kWashUnit);
  j.kv("wash_within_one_unit", wash_ok);
  j.end_object();
  j.end_object();
  if (!bench::write_report(out_path, j.take(), "misbehavior_sweep")) return 2;

  std::printf("acceptance: fp %.4f (<= 0.01: %s), fn %.4f (<= 0.05: %s), "
              "wash within %g: %s -> %s\n",
              fp_pt.fp_rate(), fp_ok ? "yes" : "NO", fn_pt.fn_rate(),
              fn_ok ? "yes" : "NO", kWashUnit, wash_ok ? "yes" : "NO",
              out_path);
  return fp_ok && fn_ok && wash_ok ? 0 : 1;
}
