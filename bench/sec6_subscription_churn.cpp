// §VI reproduction: interest-set churn statistics that motivate subscriber
// retention and the proxy renewal period.
//
// Paper anchors, measured as IS set-similarity over a lag L (how much of
// the current IS is still in the IS L frames later):
//   * ~88 % of the IS was already in the IS the previous frame (L = 1);
//   * ~50 % of the players in the IS change within 40 frames (L = 40);
//   * <10 % of IS memberships last more than 300 frames (L = 300);
//   * after entering the IS it takes 1-2 frames to become the center of
//     attention (~83 % of the time).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "interest/sets.hpp"
#include "util/stats.hpp"

using namespace watchmen;

int main() {
  bench::print_header("Sec. VI", "Interest-set churn and retention statistics");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(48, 2400, 42);
  const interest::InterestConfig cfg;

  const std::size_t n = trace.n_players;
  game::TraceReplayer rep(trace);

  // IS membership bitmaps per frame (48 players fit in one word).
  std::vector<std::vector<std::uint64_t>> is_bits(
      trace.num_frames(), std::vector<std::uint64_t>(n, 0));
  std::vector<interest::PlayerSets> prev(n);
  std::vector<std::vector<Frame>> entry_frame(n, std::vector<Frame>(n, -1));
  std::size_t entries = 0, slow_top = 0;

  for (std::size_t fi = 0; fi < trace.num_frames(); ++fi) {
    rep.seek(fi);
    const auto f = static_cast<Frame>(fi);
    for (PlayerId p = 0; p < n; ++p) {
      const interest::PlayerSets sets = interest::compute_sets(
          p, trace.frames[fi].avatars, map, f,
          [&](PlayerId a, PlayerId b) { return rep.last_interaction(a, b); },
          cfg, &prev[p]);
      for (PlayerId q : sets.interest) {
        is_bits[fi][p] |= 1ull << q;
        if (!prev[p].in_interest(q)) entry_frame[p][q] = f;  // fresh entry
        if (entry_frame[p][q] >= 0 && !sets.interest.empty() &&
            sets.interest.front() == q) {
          ++entries;
          if (f - entry_frame[p][q] >= 1) ++slow_top;
          entry_frame[p][q] = -1;
        }
      }
      prev[p] = sets;
    }
  }

  auto similarity = [&](std::size_t lag) {
    double kept = 0.0, total = 0.0;
    for (std::size_t fi = 0; fi + lag < trace.num_frames(); ++fi) {
      for (PlayerId p = 0; p < n; ++p) {
        const std::uint64_t cur = is_bits[fi][p];
        if (!cur) continue;
        kept += __builtin_popcountll(cur & is_bits[fi + lag][p]);
        total += __builtin_popcountll(cur);
      }
    }
    return total > 0 ? kept / total : 0.0;
  };

  const double s1 = similarity(1);
  const double s40 = similarity(40);
  const double s300 = similarity(300);
  std::printf("IS retained across 1 frame:     %5.1f%%  (paper: ~88%%)\n",
              100 * s1);
  std::printf("IS changed within 40 frames:    %5.1f%%  (paper: ~50%%)\n",
              100 * (1.0 - s40));
  std::printf("IS memberships lasting >300 fr: %5.1f%%  (paper: <10%%)\n",
              100 * s300);
  std::printf("IS entries needing >=1 frame to top attention: %5.1f%% "
              "(paper: ~83%% take 1-2 frames)\n",
              entries > 0
                  ? 100.0 * static_cast<double>(slow_top) / static_cast<double>(entries)
                  : 0.0);
  std::printf("\n-> the 40-frame retention timeout (= proxy renewal period) "
              "matches the churn; only new subscriptions are sent "
              "explicitly.\n   (Our hotspot AI jitters more than human players,"
              " so 1-frame retention runs a few points under the paper.)\n");
  return 0;
}
