// Ablation: map sensitivity (paper §VI: "While this value can be slightly
// different for different maps, we found it to be fairly accurate for most
// gaming sessions").
//
// The open q3dm17-style arena vs an indoor q3dm6-style room/corridor map:
// occlusion shrinks vision sets and PVS, which changes exposure, witness
// availability, and bandwidth — but the architecture's qualitative
// behaviour (orderings, detection) is map-independent.

#include <cstdio>

#include "baseline/exposure.hpp"
#include "bench_common.hpp"
#include "sim/bandwidth.hpp"
#include "sim/detection.hpp"

using namespace watchmen;

namespace {

void report(const char* label, const game::GameMap& map) {
  game::SessionConfig gc;
  gc.n_players = 32;
  gc.n_frames = 1200;
  gc.seed = 42;
  const game::GameTrace trace = game::record_session(map, gc);
  const interest::InterestConfig icfg;
  const core::ProxySchedule sched(trace.seed, trace.n_players);

  const sim::SetSizeStats sizes = sim::measure_set_sizes(trace, map, icfg);
  const auto witnesses =
      baseline::measure_witnesses(trace, map, icfg, sched, 4);

  const baseline::WatchmenExposure wm(map, icfg, sched);
  const auto frac = baseline::measure_coalition_exposure(wm, trace, 4);
  const double hidden =
      frac[static_cast<int>(baseline::ExposureCategory::kInfreqOnly)] +
      frac[static_cast<int>(baseline::ExposureCategory::kNothing)];

  core::SessionOptions opts;
  opts.net = core::NetProfile::kKing;
  opts.loss_rate = 0.01;
  sim::DetectionConfig dc;
  dc.session = opts;
  const auto det =
      sim::run_detection(trace, map, sim::Verification::kPosition, dc);

  std::printf("%-14s %6.2f %7.1f%% %7.1f%% %10.2f %10.1f%% %11.1f%%\n", label,
              sizes.avg_is, 100 * sizes.vs_fraction, 100 * sizes.pvs_fraction,
              witnesses.is_witnesses + witnesses.vs_witnesses, 100 * hidden,
              100 * det.success());
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Map sensitivity: open arena vs indoor rooms");
  std::printf("%-14s %6s %8s %8s %10s %11s %12s\n", "map", "IS", "VS%", "PVS%",
              "witnesses", "hidden(c=4)", "pos-detect");
  report("q3dm17-like", game::make_longest_yard());
  report("q3dm6-like", game::make_campgrounds());
  std::printf("\n-> indoor occlusion shrinks vision sets (fewer witnesses, "
              "more players hidden from a coalition); proxy-based checks "
              "like position verification are unaffected — the proxy sees "
              "its player regardless of walls.\n");
  return 0;
}
