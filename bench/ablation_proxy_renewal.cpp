// Ablation: the proxy renewal period R (DESIGN.md §5).
//
// The paper argues R must be "long enough to cross-check updates, but not
// long enough for colluding cheaters to cooperate" (§IV). We sweep R and
// report (a) speed-hack detection success, (b) the collusion window — the
// fraction of time a cheater in a coalition of 4 is covered by a colluding
// proxy, and the longest such streak, and (c) handoff overhead.

#include <cstdio>

#include "bench_common.hpp"
#include "cheat/cheats.hpp"
#include "core/session.hpp"
#include "sim/detection.hpp"

using namespace watchmen;

namespace {

struct CollusionStats {
  double covered_fraction = 0.0;  ///< frames a colluder proxies the cheater
  double max_streak_s = 0.0;      ///< longest continuous covered streak
};

CollusionStats collusion_window(std::size_t n, Frame renewal, Frame horizon,
                                std::size_t coalition) {
  const core::ProxySchedule sched(42, n, renewal);
  CollusionStats out;
  Frame covered = 0, streak = 0, best_streak = 0;
  for (Frame f = 0; f < horizon; ++f) {
    const PlayerId proxy = sched.proxy_at(/*cheater=*/0, f);
    const bool colluder = proxy < coalition;  // players 0..c-1 collude
    if (colluder) {
      ++covered;
      ++streak;
      best_streak = std::max(best_streak, streak);
    } else {
      streak = 0;
    }
  }
  out.covered_fraction = static_cast<double>(covered) / static_cast<double>(horizon);
  out.max_streak_s = static_cast<double>(best_streak) *
                     static_cast<double>(kFrameMs) / 1000.0;
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Proxy renewal period R");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(32, 800, 42);

  std::printf("%-10s %12s %16s %14s %14s\n", "R(frames)", "speed-hack",
              "colluder-proxy", "max-streak", "handoffs/s");
  std::printf("%-10s %12s %16s %14s %14s\n", "", "detection", "fraction(c=4)",
              "(seconds)", "(per player)");

  for (Frame renewal : {10, 20, 40, 80, 200, 400}) {
    core::SessionOptions opts;
    opts.net = core::NetProfile::kKing;
    opts.loss_rate = 0.01;
    opts.watchmen.renewal_frames = renewal;

    sim::DetectionConfig dc;
    dc.session = opts;
    const auto det =
        sim::run_detection(trace, map, sim::Verification::kPosition, dc);

    const auto col = collusion_window(32, renewal, 48000, 4);
    const double handoffs_per_s =
        1000.0 / (static_cast<double>(renewal) * static_cast<double>(kFrameMs));

    std::printf("%-10lld %11.1f%% %15.1f%% %13.1fs %14.2f\n",
                static_cast<long long>(renewal), 100 * det.success(),
                100 * col.covered_fraction, col.max_streak_s, handoffs_per_s);
  }

  std::printf("\n-> short R: high handoff churn and short verification windows;"
              "\n   long R: a colluding proxy covers the cheater for long "
              "streaks.\n   R=40 (2 s) balances both, as chosen in the paper.\n");
  return 0;
}
