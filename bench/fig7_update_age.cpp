// Fig. 7 reproduction: distribution (PDF) of the age of received updates —
// all three types — measured in frames from when they should have been
// received, under the King (mean 62 ms) and PeerWise (mean 68 ms) latency
// sets with 1 % message loss.
//
// Paper criterion: Quake III tolerates 150 ms, so only messages 3+ frames
// old count as loss; with <1 % such messages the gameplay is good.

#include <cstdio>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "util/stats.hpp"

using namespace watchmen;

namespace {

void run(const char* name, core::NetProfile profile,
         const game::GameTrace& trace, const game::GameMap& map) {
  core::SessionOptions opts;
  opts.net = profile;
  opts.loss_rate = 0.01;
  core::WatchmenSession session(trace, map, opts);
  session.run();

  const Samples ages = session.merged_update_ages();
  Histogram pdf(0.0, 10.0, 10);
  std::size_t late = 0;
  for (double v : ages.values()) {
    pdf.add(v);
    if (v >= 3.0) ++late;
  }

  std::printf("\n--- %s latency set (%zu updates received) ---\n", name,
              ages.count());
  std::printf("%-6s %8s  PDF\n", "age", "fraction");
  for (std::size_t b = 0; b < pdf.bins(); ++b) {
    std::printf("%-6.0f %7.2f%%  ", pdf.bin_center(b) - 0.5, 100 * pdf.fraction(b));
    bench::print_bar(pdf.fraction(b));
    std::printf("\n");
  }
  std::printf("median=%.1f p90=%.1f p99=%.1f frames; >=3 frames late "
              "(counts as loss): %.2f%%\n",
              ages.quantile(0.5), ages.quantile(0.9), ages.quantile(0.99),
              100.0 * static_cast<double>(late) / static_cast<double>(ages.count()));
}

}  // namespace

int main() {
  bench::print_header("Fig. 7", "Age of received updates (frames) — King & PeerWise");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(48, 1200, 42);

  run("King (mean 62 ms)", core::NetProfile::kKing, trace, map);
  run("PeerWise (mean 68 ms)", core::NetProfile::kPeerwise, trace, map);

  std::printf("\n(paper: 2-hop proxy relay keeps nearly all updates within the "
              "150 ms / 3-frame playability bound at ~1%% loss)\n");
  return 0;
}
