// Extension experiment: detection vs cheat intensity.
//
// Fig. 6 fixes the cheater at "up to 10 % invalid messages". A rational
// cheater trades intensity for stealth — fewer invalid messages are less
// useful but less exposed. This sweep shows the per-message detection
// probability is essentially independent of the rate (each invalid message
// is judged on its own), so throttling buys a cheater volume, not safety:
// the expected number of high-confidence reports still grows linearly with
// every cheat message sent.

#include <cstdio>

#include "bench_common.hpp"
#include "sim/detection.hpp"

using namespace watchmen;

int main() {
  bench::print_header("Extension", "Detection vs cheat-message intensity");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(32, 1200, 42);

  core::SessionOptions opts;
  opts.net = core::NetProfile::kKing;
  opts.loss_rate = 0.01;
  opts.watchmen.guidance_tolerance =
      sim::calibrate_guidance_tolerance(trace, map, opts);

  std::printf("%-10s %10s %10s %10s %14s\n", "rate", "injected", "detected",
              "success", "reports-drawn");
  for (double rate : {0.01, 0.02, 0.05, 0.10, 0.25}) {
    sim::DetectionConfig dc;
    dc.session = opts;
    dc.cheat_rate = rate;
    const auto out =
        sim::run_detection(trace, map, sim::Verification::kPosition, dc);
    std::printf("%8.0f%% %11zu %10zu %9.1f%% %14zu\n", 100 * rate,
                out.injected, out.detected, 100 * out.success(), out.detected);
  }

  std::printf("\n-> per-message detection probability is flat in the cheat "
              "rate: each invalid position is verified independently by the "
              "proxy and the IS witnesses, so a cheater cannot hide by "
              "throttling — only by not cheating.\n");
  return 0;
}
