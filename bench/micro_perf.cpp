// Micro-benchmarks (google-benchmark): the per-message and per-frame costs
// that determine whether Watchmen's security layer fits in a 50 ms frame
// budget — signing/verification, wire encode/decode, set computation,
// proxy-schedule evaluation, and network event throughput.

#include <benchmark/benchmark.h>

#include "core/messages.hpp"
#include "core/proxy_schedule.hpp"
#include "core/session.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sig.hpp"
#include "game/trace.hpp"
#include "interest/delta.hpp"
#include "interest/sets.hpp"
#include "interest/visibility_cache.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

using namespace watchmen;

namespace {

game::AvatarState sample_state() {
  game::AvatarState s;
  s.pos = {1024.125, 512.5, 96};
  s.vel = {320, -100, 12};
  s.yaw = 1.5;
  s.health = 92;
  s.armor = 50;
  s.ammo = 77;
  s.frags = 3;
  return s;
}

void BM_Sha256_88B(benchmark::State& state) {
  std::vector<std::uint8_t> msg(88, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(msg));
  }
}
BENCHMARK(BM_Sha256_88B);

void BM_Sign(benchmark::State& state) {
  const auto kp = crypto::KeyPair::generate(42);
  std::vector<std::uint8_t> msg(88, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sign(kp, msg));
  }
}
BENCHMARK(BM_Sign);

void BM_Verify(benchmark::State& state) {
  const auto kp = crypto::KeyPair::generate(42);
  std::vector<std::uint8_t> msg(88, 0x5a);
  const auto sig = crypto::sign(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_Verify);

void BM_SealOpen(benchmark::State& state) {
  const crypto::KeyRegistry keys(42, 4);
  core::MsgHeader h;
  h.origin = 1;
  h.subject = 1;
  h.frame = 1234;
  const auto body = core::encode_state_body(sample_state());
  for (auto _ : state) {
    const auto wire = core::seal(h, body, keys.key_pair(1));
    benchmark::DoNotOptimize(core::open(wire, keys));
  }
}
BENCHMARK(BM_SealOpen);

void BM_DeltaEncode(benchmark::State& state) {
  const auto prev = sample_state();
  auto cur = prev;
  cur.pos.x += 14.0;
  cur.health -= 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interest::encode_delta(prev, cur));
  }
}
BENCHMARK(BM_DeltaEncode);

void BM_ComputeSets(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig cfg;
  cfg.n_players = n;
  cfg.n_frames = 60;
  const game::GameTrace trace = game::record_session(map, cfg);
  const auto& avatars = trace.frames.back().avatars;
  const interest::InterestConfig icfg;
  PlayerId who = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        interest::compute_sets(who, avatars, map, 59, nullptr, icfg));
    who = (who + 1) % n;
  }
}
BENCHMARK(BM_ComputeSets)->Arg(16)->Arg(48)->Arg(128);

// ---------------------------------------------------------------------------
// Interest-management hot path (see DESIGN.md "Performance architecture").
// BM_Visible_* isolate the occlusion raycast with and without the spatial
// index; BM_ComputeSets*_Nplayers measure the *full* per-frame set
// computation for all N players — the optimized variants use the production
// path (occluder index + frame-scoped visibility cache + shared eye table +
// reusable output buffers), the Baseline variants the pre-optimization one
// (compute_sets_reference + brute-force raycasts + per-call allocation).

/// Deterministic eye-height segment endpoints spread over the map.
std::vector<std::pair<Vec3, Vec3>> sample_segments(const game::GameMap& map,
                                                   std::size_t count) {
  Rng rng(12345);
  const Vec3 lo = map.bounds_min(), hi = map.bounds_max();
  std::vector<std::pair<Vec3, Vec3>> segs;
  segs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto pt = [&] {
      Vec3 p;
      p.x = lo.x + rng.uniform() * (hi.x - lo.x);
      p.y = lo.y + rng.uniform() * (hi.y - lo.y);
      p.z = map.ground_height(p.x, p.y) + 56.0;
      return p;
    };
    segs.emplace_back(pt(), pt());
  }
  return segs;
}

void BM_Visible_Brute(benchmark::State& state) {
  game::GameMap map = game::make_longest_yard();
  map.set_use_index(false);
  const auto segs = sample_segments(map, 512);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = segs[i++ & 511];
    benchmark::DoNotOptimize(map.visible(a, b));
  }
}
BENCHMARK(BM_Visible_Brute);

void BM_Visible_Indexed(benchmark::State& state) {
  game::GameMap map = game::make_longest_yard();
  const auto segs = sample_segments(map, 512);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = segs[i++ & 511];
    benchmark::DoNotOptimize(map.visible(a, b));
  }
}
BENCHMARK(BM_Visible_Indexed);

struct FrameBenchState {
  game::GameMap map;
  game::GameTrace trace;
  interest::InterestConfig icfg;
  std::vector<interest::PlayerSets> prev, cur;
  interest::VisibilityCache cache;
  interest::EyeTable eyes;
  std::size_t fi = 0;

  explicit FrameBenchState(std::size_t n) : map(game::make_longest_yard()) {
    game::SessionConfig cfg;
    cfg.n_players = n;
    cfg.n_frames = 120;
    trace = game::record_session(map, cfg);
    prev.resize(n);
    cur.resize(n);
  }

  std::size_t n() const { return prev.size(); }

  void frame_baseline() {
    const auto& av = trace.frames[fi].avatars;
    for (PlayerId p = 0; p < n(); ++p) {
      prev[p] = interest::compute_sets_reference(
          p, av, map, static_cast<Frame>(fi), nullptr, icfg, &prev[p]);
    }
    fi = (fi + 1) % trace.num_frames();
  }

  void frame_optimized() {
    const auto& av = trace.frames[fi].avatars;
    cache.begin_frame(n());
    eyes.build(av);
    for (PlayerId p = 0; p < n(); ++p) {
      interest::compute_sets_into(p, av, map, static_cast<Frame>(fi), nullptr,
                                  icfg, &prev[p], &cache, cur[p], &eyes);
    }
    std::swap(prev, cur);
    fi = (fi + 1) % trace.num_frames();
  }
};

void BM_ComputeSetsBaseline(benchmark::State& state) {
  FrameBenchState s(static_cast<std::size_t>(state.range(0)));
  s.map.set_use_index(false);
  for (auto _ : state) s.frame_baseline();
}
BENCHMARK(BM_ComputeSetsBaseline)
    ->Arg(48)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

/// The headline numbers: BM_ComputeSets_{48,128,256}players, one full
/// N-player frame of the optimized interest pipeline.
void BM_ComputeSets_Nplayers(benchmark::State& state) {
  FrameBenchState s(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) s.frame_optimized();
}
BENCHMARK(BM_ComputeSets_Nplayers)
    ->Name("BM_ComputeSets_48players")->Arg(48)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ComputeSets_Nplayers)
    ->Name("BM_ComputeSets_128players")->Arg(128)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ComputeSets_Nplayers)
    ->Name("BM_ComputeSets_256players")->Arg(256)->Unit(benchmark::kMicrosecond);

/// Whole session frame (interest sets + message production + simulated
/// network + verification) — how the interest-path win lands in the frame
/// budget end to end.
void BM_SessionFrame_48players(benchmark::State& state) {
  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig cfg;
  cfg.n_players = 48;
  cfg.n_frames = 300;
  const game::GameTrace trace = game::record_session(map, cfg);
  core::SessionOptions opts;
  auto session = std::make_unique<core::WatchmenSession>(trace, map, opts);
  for (auto _ : state) {
    if (static_cast<std::size_t>(session->current_frame()) >=
        trace.num_frames()) {
      state.PauseTiming();
      session = std::make_unique<core::WatchmenSession>(trace, map, opts);
      state.ResumeTiming();
    }
    session->run_frames(1);
  }
}
BENCHMARK(BM_SessionFrame_48players)->Unit(benchmark::kMicrosecond);

void BM_ProxyOf(benchmark::State& state) {
  const core::ProxySchedule sched(42, 48);
  std::int64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.proxy_of(7, round++));
  }
}
BENCHMARK(BM_ProxyOf);

void BM_NetworkSendDeliver(benchmark::State& state) {
  net::TransportConfig tc;
  tc.n_nodes = 16;
  tc.latency = std::make_unique<net::FixedLatency>(1.0);
  tc.seed = 1;
  const auto net = net::make_transport(std::move(tc));
  std::uint64_t delivered = 0;
  for (PlayerId p = 0; p < 16; ++p) {
    net->set_handler(p, [&](const net::Envelope&) { ++delivered; });
  }
  auto payload = std::make_shared<const std::vector<std::uint8_t>>(88, 0x5a);
  TimeMs t = 0;
  for (auto _ : state) {
    net->send(0, 1, payload);
    net->run_until(++t + 2);
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_WorldStep48(benchmark::State& state) {
  const game::GameMap map = game::make_longest_yard();
  game::GameWorld world(map, 48, 42);
  auto roster = game::make_roster(map, 48, 48, 42);
  std::vector<game::PlayerInput> in(48);
  for (auto _ : state) {
    for (PlayerId p = 0; p < 48; ++p) in[p] = roster[p]->decide(p, world);
    benchmark::DoNotOptimize(world.step(in));
  }
}
BENCHMARK(BM_WorldStep48);

}  // namespace

BENCHMARK_MAIN();
