// Micro-benchmarks (google-benchmark): the per-message and per-frame costs
// that determine whether Watchmen's security layer fits in a 50 ms frame
// budget — signing/verification, wire encode/decode, set computation,
// proxy-schedule evaluation, and network event throughput.

#include <benchmark/benchmark.h>

#include "core/messages.hpp"
#include "core/proxy_schedule.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sig.hpp"
#include "game/trace.hpp"
#include "interest/delta.hpp"
#include "interest/sets.hpp"
#include "net/network.hpp"

using namespace watchmen;

namespace {

game::AvatarState sample_state() {
  game::AvatarState s;
  s.pos = {1024.125, 512.5, 96};
  s.vel = {320, -100, 12};
  s.yaw = 1.5;
  s.health = 92;
  s.armor = 50;
  s.ammo = 77;
  s.frags = 3;
  return s;
}

void BM_Sha256_88B(benchmark::State& state) {
  std::vector<std::uint8_t> msg(88, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(msg));
  }
}
BENCHMARK(BM_Sha256_88B);

void BM_Sign(benchmark::State& state) {
  const auto kp = crypto::KeyPair::generate(42);
  std::vector<std::uint8_t> msg(88, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sign(kp, msg));
  }
}
BENCHMARK(BM_Sign);

void BM_Verify(benchmark::State& state) {
  const auto kp = crypto::KeyPair::generate(42);
  std::vector<std::uint8_t> msg(88, 0x5a);
  const auto sig = crypto::sign(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_Verify);

void BM_SealOpen(benchmark::State& state) {
  const crypto::KeyRegistry keys(42, 4);
  core::MsgHeader h;
  h.origin = 1;
  h.subject = 1;
  h.frame = 1234;
  const auto body = core::encode_state_body(sample_state());
  for (auto _ : state) {
    const auto wire = core::seal(h, body, keys.key_pair(1));
    benchmark::DoNotOptimize(core::open(wire, keys));
  }
}
BENCHMARK(BM_SealOpen);

void BM_DeltaEncode(benchmark::State& state) {
  const auto prev = sample_state();
  auto cur = prev;
  cur.pos.x += 14.0;
  cur.health -= 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interest::encode_delta(prev, cur));
  }
}
BENCHMARK(BM_DeltaEncode);

void BM_ComputeSets(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig cfg;
  cfg.n_players = n;
  cfg.n_frames = 60;
  const game::GameTrace trace = game::record_session(map, cfg);
  const auto& avatars = trace.frames.back().avatars;
  const interest::InterestConfig icfg;
  PlayerId who = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        interest::compute_sets(who, avatars, map, 59, nullptr, icfg));
    who = (who + 1) % n;
  }
}
BENCHMARK(BM_ComputeSets)->Arg(16)->Arg(48)->Arg(128);

void BM_ProxyOf(benchmark::State& state) {
  const core::ProxySchedule sched(42, 48);
  std::int64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.proxy_of(7, round++));
  }
}
BENCHMARK(BM_ProxyOf);

void BM_NetworkSendDeliver(benchmark::State& state) {
  net::SimNetwork net(16, std::make_unique<net::FixedLatency>(1.0), 0.0, 1);
  std::uint64_t delivered = 0;
  for (PlayerId p = 0; p < 16; ++p) {
    net.set_handler(p, [&](const net::Envelope&) { ++delivered; });
  }
  auto payload = std::make_shared<const std::vector<std::uint8_t>>(88, 0x5a);
  TimeMs t = 0;
  for (auto _ : state) {
    net.send(0, 1, payload);
    net.run_until(++t + 2);
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_WorldStep48(benchmark::State& state) {
  const game::GameMap map = game::make_longest_yard();
  game::GameWorld world(map, 48, 42);
  auto roster = game::make_roster(map, 48, 48, 42);
  std::vector<game::PlayerInput> in(48);
  for (auto _ : state) {
    for (PlayerId p = 0; p < 48; ++p) in[p] = roster[p]->decide(p, world);
    benchmark::DoNotOptimize(world.step(in));
  }
}
BENCHMARK(BM_WorldStep48);

}  // namespace

BENCHMARK_MAIN();
