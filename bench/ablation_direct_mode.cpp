// Ablation: §VI optimization 3 — relaxing the first hop.
//
// "In extreme cases, one can relax the first hop requirement, if bandwidth
// allows it, and remove the forwarding proxy requirement at the cost of
// lower security." Players push frequent updates directly to the IS
// subscribers their proxy names (1 hop) while a concurrent copy still goes
// to the proxy for verification. We quantify both sides of the trade:
// update freshness vs what a player now learns about who watches it.

#include <cstdio>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "util/stats.hpp"

using namespace watchmen;

int main() {
  bench::print_header("Ablation", "Direct 1-hop updates vs proxied 2-hop");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(32, 800, 42);

  std::printf("%-10s %10s %8s %8s %14s %18s\n", "mode", "mean age", "p90",
              "p99", ">=3fr late", "subscriber lists");
  for (bool direct : {false, true}) {
    core::SessionOptions opts;
    opts.net = core::NetProfile::kKing;
    opts.loss_rate = 0.01;
    opts.watchmen.direct_updates = direct;
    core::WatchmenSession session(trace, map, opts);
    session.run();

    const Samples ages = session.merged_update_ages();
    double late = 0;
    for (double v : ages.values()) late += (v >= 3.0);
    std::uint64_t lists = 0;
    for (PlayerId p = 0; p < trace.n_players; ++p) {
      lists += session.peer(p).metrics().sent_by_type[static_cast<int>(
          core::MsgType::kSubscriberList)];
    }
    std::printf("%-10s %7.2f fr %5.1f fr %5.1f fr %13.2f%% %18llu\n",
                direct ? "1-hop" : "2-hop", ages.mean(), ages.quantile(0.9),
                ages.quantile(0.99),
                100.0 * late / static_cast<double>(ages.count()),
                static_cast<unsigned long long>(lists));
  }

  std::printf("\n-> one hop shaves roughly a latency-set mean off every "
              "frequent update; the price is every player receiving its "
              "subscriber list (rate-analysis exposure returns), direct "
              "sends no longer being protocol violations, and witnesses "
              "losing the forwarding check — exactly the paper's \"lower "
              "security\" caveat.\n");
  return 0;
}
