// Emits BENCH_interest.json: before/after timings of the interest-management
// hot path on the q3dm17-like map (see DESIGN.md "Performance architecture").
//
// "before" replays the pre-optimization pipeline exactly — per-player
// compute_sets_reference with brute-force occlusion raycasts and fresh
// per-call allocations, the shape the session loop shipped with.  "after"
// is the production path: occluder index, frame-scoped visibility cache,
// shared eye table and reusable output buffers.  Both are timed back to
// back on the same recorded trace (best of several passes, so transient
// machine noise cannot inflate either side), and both paths are asserted
// to produce identical sets while timing.
//
// Usage: perf_report [output.json]   (default ./BENCH_interest.json)

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "game/map.hpp"
#include "game/trace.hpp"
#include "interest/sets.hpp"
#include "interest/visibility_cache.hpp"

using namespace watchmen;

namespace {

constexpr std::size_t kPlayers = 48;
constexpr std::size_t kFrames = 120;
constexpr int kPasses = 9;

struct Fixture {
  game::GameMap map;
  game::GameTrace trace;
  interest::InterestConfig icfg;

  Fixture() : map(game::make_longest_yard()) {
    game::SessionConfig cfg;
    cfg.n_players = kPlayers;
    cfg.n_frames = kFrames;
    trace = game::record_session(map, cfg);
  }
};

/// Best-of-kPasses ms per full 48-player frame for `frame_fn(fi)`.
template <class F>
double best_ms_per_frame(const Fixture& fx, F&& frame_fn) {
  double best = 1e300;
  for (int pass = 0; pass < kPasses; ++pass) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t fi = 0; fi < fx.trace.num_frames(); ++fi) frame_fn(fi);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() /
        static_cast<double>(fx.trace.num_frames());
    if (ms < best) best = ms;
  }
  return best;
}

bool same_sets(const interest::PlayerSets& a, const interest::PlayerSets& b) {
  return a.interest == b.interest && a.vision == b.vision;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_interest.json";
  Fixture fx;

  // --- before: the pre-change pipeline -----------------------------------
  fx.map.set_use_index(false);
  std::vector<interest::PlayerSets> prev_ref(kPlayers);
  const double before_ms = best_ms_per_frame(fx, [&](std::size_t fi) {
    const auto& av = fx.trace.frames[fi].avatars;
    for (PlayerId p = 0; p < kPlayers; ++p) {
      prev_ref[p] = interest::compute_sets_reference(
          p, av, fx.map, static_cast<Frame>(fi), nullptr, fx.icfg,
          &prev_ref[p]);
    }
  });

  // --- after: the optimized pipeline, checked against the reference ------
  fx.map.set_use_index(true);
  std::vector<interest::PlayerSets> prev(kPlayers), cur(kPlayers);
  interest::VisibilityCache cache;
  interest::EyeTable eyes;
  std::size_t mismatches = 0;
  for (auto& s : prev_ref) s = {};
  const double after_ms = best_ms_per_frame(fx, [&](std::size_t fi) {
    const auto& av = fx.trace.frames[fi].avatars;
    cache.begin_frame(kPlayers);
    eyes.build(av);
    for (PlayerId p = 0; p < kPlayers; ++p) {
      interest::compute_sets_into(p, av, fx.map, static_cast<Frame>(fi),
                                  nullptr, fx.icfg, &prev[p], &cache, cur[p],
                                  &eyes);
    }
    std::swap(prev, cur);
  });
  // Equivalence spot-check over one replay (outside the timed region).
  for (auto& s : prev) s = {};
  for (auto& s : prev_ref) s = {};
  for (std::size_t fi = 0; fi < fx.trace.num_frames(); ++fi) {
    const auto& av = fx.trace.frames[fi].avatars;
    cache.begin_frame(kPlayers);
    eyes.build(av);
    for (PlayerId p = 0; p < kPlayers; ++p) {
      interest::compute_sets_into(p, av, fx.map, static_cast<Frame>(fi),
                                  nullptr, fx.icfg, &prev[p], &cache, cur[p],
                                  &eyes);
      fx.map.set_use_index(false);
      const auto ref = interest::compute_sets_reference(
          p, av, fx.map, static_cast<Frame>(fi), nullptr, fx.icfg,
          &prev_ref[p]);
      fx.map.set_use_index(true);
      if (!same_sets(cur[p], ref)) ++mismatches;
      prev_ref[p] = ref;
    }
    std::swap(prev, cur);
  }

  const double speedup = before_ms / after_ms;
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "perf_report: cannot write " << out_path << "\n";
    return 2;
  }
  out << "{\n"
      << "  \"benchmark\": \"BM_ComputeSets_48players\",\n"
      << "  \"map\": \"" << fx.map.name() << "\",\n"
      << "  \"players\": " << kPlayers << ",\n"
      << "  \"frames\": " << kFrames << ",\n"
      << "  \"passes\": " << kPasses << ",\n"
      << "  \"before_ms_per_frame\": " << before_ms << ",\n"
      << "  \"after_ms_per_frame\": " << after_ms << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"set_mismatches\": " << mismatches << "\n"
      << "}\n";
  out.close();

  std::printf("before %.4f ms/frame, after %.4f ms/frame, speedup %.2fx, "
              "mismatches %zu -> %s\n",
              before_ms, after_ms, speedup, mismatches, out_path);
  return mismatches == 0 ? 0 : 1;
}
