// Emits BENCH_interest.json: before/after timings of the interest-management
// hot path on the q3dm17-like map (see DESIGN.md "Performance architecture").
//
// "before" replays the pre-optimization pipeline exactly — per-player
// compute_sets_reference with brute-force occlusion raycasts and fresh
// per-call allocations, the shape the session loop shipped with.  "after"
// is the production path: occluder index, frame-scoped visibility cache,
// shared eye table and reusable output buffers.  A third pass, "obs_on",
// re-times the production path with a live obs::Registry + obs::Tracer
// attached, emitting the same per-frame spans and inline counter updates
// the session does — the ISSUE 5 acceptance gate requires that overhead to
// stay within 5 % of the uninstrumented path.  All passes are timed back to
// back on the same recorded trace (best of several passes, so transient
// machine noise cannot inflate any side), and both pipelines are asserted
// to produce identical sets while timing.
//
// Usage: perf_report [output.json]   (default ./BENCH_interest.json)

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "game/map.hpp"
#include "game/trace.hpp"
#include "interest/sets.hpp"
#include "interest/visibility_cache.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

using namespace watchmen;

namespace {

constexpr std::size_t kPlayers = 48;
constexpr std::size_t kFrames = 120;
constexpr int kPasses = 9;
constexpr double kMaxObsOverhead = 0.05;  // ISSUE 5 acceptance: <= 5 %

struct Fixture {
  game::GameMap map;
  game::GameTrace trace;
  interest::InterestConfig icfg;

  Fixture() : map(game::make_longest_yard()) {
    game::SessionConfig cfg;
    cfg.n_players = kPlayers;
    cfg.n_frames = kFrames;
    trace = game::record_session(map, cfg);
  }
};

/// Best-of-kPasses ms per full 48-player frame for `frame_fn(fi)`.
template <class F>
double best_ms_per_frame(const Fixture& fx, F&& frame_fn) {
  double best = 1e300;
  for (int pass = 0; pass < kPasses; ++pass) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t fi = 0; fi < fx.trace.num_frames(); ++fi) frame_fn(fi);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() /
        static_cast<double>(fx.trace.num_frames());
    if (ms < best) best = ms;
  }
  return best;
}

bool same_sets(const interest::PlayerSets& a, const interest::PlayerSets& b) {
  return a.interest == b.interest && a.vision == b.vision;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_interest.json";
  Fixture fx;

  // --- before: the pre-change pipeline -----------------------------------
  fx.map.set_use_index(false);
  std::vector<interest::PlayerSets> prev_ref(kPlayers);
  const double before_ms = best_ms_per_frame(fx, [&](std::size_t fi) {
    const auto& av = fx.trace.frames[fi].avatars;
    for (PlayerId p = 0; p < kPlayers; ++p) {
      prev_ref[p] = interest::compute_sets_reference(
          p, av, fx.map, static_cast<Frame>(fi), nullptr, fx.icfg,
          &prev_ref[p]);
    }
  });

  // --- after: the optimized pipeline, checked against the reference ------
  fx.map.set_use_index(true);
  std::vector<interest::PlayerSets> prev(kPlayers), cur(kPlayers);
  interest::VisibilityCache cache;
  interest::EyeTable eyes;
  std::size_t mismatches = 0;
  for (auto& s : prev_ref) s = {};
  const double after_ms = best_ms_per_frame(fx, [&](std::size_t fi) {
    const auto& av = fx.trace.frames[fi].avatars;
    cache.begin_frame(kPlayers);
    eyes.build(av);
    for (PlayerId p = 0; p < kPlayers; ++p) {
      interest::compute_sets_into(p, av, fx.map, static_cast<Frame>(fi),
                                  nullptr, fx.icfg, &prev[p], &cache, cur[p],
                                  &eyes);
    }
    std::swap(prev, cur);
  });

  // --- obs_on: the same optimized pipeline with live instrumentation -----
  // Mirrors what the session does per frame: a frame span and a phase span
  // into the tracer's ring, plus inline counter adds through a stable
  // reference obtained once (the registry itself is pull-model and is never
  // queried from the hot path).
  obs::Registry registry;
  obs::Tracer tracer;
  obs::Counter& sets_computed = registry.counter("bench.sets_computed");
  for (auto& s : prev) s = {};
  const double obs_ms = best_ms_per_frame(fx, [&](std::size_t fi) {
    const Frame f = static_cast<Frame>(fi);
    const obs::Span frame_span(&tracer, "frame", f);
    const auto& av = fx.trace.frames[fi].avatars;
    cache.begin_frame(kPlayers);
    eyes.build(av);
    {
      const obs::Span span(&tracer, "interest_compute", f);
      for (PlayerId p = 0; p < kPlayers; ++p) {
        interest::compute_sets_into(p, av, fx.map, f, nullptr, fx.icfg,
                                    &prev[p], &cache, cur[p], &eyes);
        sets_computed.add(1);
      }
    }
    std::swap(prev, cur);
  });
  const double obs_overhead = obs_ms / after_ms - 1.0;
  const bool obs_ok = obs_overhead <= kMaxObsOverhead;

  // Equivalence spot-check over one replay (outside the timed region).
  for (auto& s : prev) s = {};
  for (auto& s : prev_ref) s = {};
  for (std::size_t fi = 0; fi < fx.trace.num_frames(); ++fi) {
    const auto& av = fx.trace.frames[fi].avatars;
    cache.begin_frame(kPlayers);
    eyes.build(av);
    for (PlayerId p = 0; p < kPlayers; ++p) {
      interest::compute_sets_into(p, av, fx.map, static_cast<Frame>(fi),
                                  nullptr, fx.icfg, &prev[p], &cache, cur[p],
                                  &eyes);
      fx.map.set_use_index(false);
      const auto ref = interest::compute_sets_reference(
          p, av, fx.map, static_cast<Frame>(fi), nullptr, fx.icfg,
          &prev_ref[p]);
      fx.map.set_use_index(true);
      if (!same_sets(cur[p], ref)) ++mismatches;
      prev_ref[p] = ref;
    }
    std::swap(prev, cur);
  }

  // --- control-plane latency tails (ISSUE 9): a short full-protocol run
  // with the registry attached, read back through the same pull-model
  // collector the session exports in production. delivery_age is the
  // transport's send-to-deliver gap; handoff/subscribe latency is the
  // receive-side frame-stamp age of each control message, so the numbers
  // are comparable across the simulated and real-socket backends.
  obs::Registry lat_reg;
  {
    core::SessionOptions sopts;
    sopts.net = core::NetProfile::kKing;
    sopts.registry = &lat_reg;
    core::WatchmenSession session(fx.trace, fx.map, sopts);
    session.run();
    (void)lat_reg.snapshot_json();  // runs the collector, fills the gauges
  }
  const double delivery_p99 = lat_reg.gauge("net.delivery_age_ms_p99").value();
  const double handoff_p99 =
      lat_reg.gauge("peer.handoff_latency_ms_p99").value();
  const double subscribe_p99 =
      lat_reg.gauge("peer.subscribe_latency_ms_p99").value();

  const double speedup = before_ms / after_ms;
  obs::JsonWriter j;
  j.begin_object();
  bench::report_header(j, "BM_ComputeSets_48players", fx.map.name(), kPlayers,
                       kFrames);
  j.kv("passes", kPasses);
  j.kv("before_ms_per_frame", before_ms);
  j.kv("after_ms_per_frame", after_ms);
  j.kv("speedup", speedup);
  j.kv("obs_on_ms_per_frame", obs_ms);
  j.kv("obs_overhead_fraction", obs_overhead);
  j.kv("obs_overhead_within_5pct", obs_ok);
  j.kv("trace_events_emitted", tracer.total_events());
  j.kv("sets_counted", sets_computed.value());
  j.kv("set_mismatches", mismatches);
  j.kv("delivery_age_ms_p99", delivery_p99);
  j.kv("handoff_latency_ms_p99", handoff_p99);
  j.kv("subscribe_latency_ms_p99", subscribe_p99);
  j.end_object();
  if (!bench::write_report(out_path, j.take(), "perf_report")) return 2;

  std::printf("before %.4f ms/frame, after %.4f ms/frame, speedup %.2fx, "
              "obs_on %.4f ms/frame (%+.1f%%, <= 5%%: %s), mismatches %zu "
              "-> %s\n",
              before_ms, after_ms, speedup, obs_ms, obs_overhead * 100.0,
              obs_ok ? "yes" : "NO", mismatches, out_path);
  std::printf("latency p99: delivery %.1f ms, handoff %.1f ms, subscribe "
              "%.1f ms\n",
              delivery_p99, handoff_p99, subscribe_p99);
  return mismatches == 0 && obs_ok ? 0 : 1;
}
