// Ablation: wire-format costs — delta coding and the security envelope.
//
// The paper's protocol signs every message (~100-bit signatures on ~700-bit
// updates) and notes updates can be delta-coded (§II-A). This bench
// quantifies both: per-message byte budgets, the measured effect of delta
// coding on a live session, and how much of the total traffic the security
// envelope (headers + signatures) consumes — the price of cheat resistance
// that plain Quake-style networking does not pay.

#include <cstdio>

#include "bench_common.hpp"
#include "core/messages.hpp"
#include "core/session.hpp"
#include "crypto/sig.hpp"
#include "net/network.hpp"

using namespace watchmen;

int main() {
  bench::print_header("Ablation", "Wire format: delta coding & signature overhead");

  // Per-message anatomy.
  const crypto::KeyRegistry keys(42, 2);
  game::AvatarState s;
  s.pos = {1024.125, 512.5, 96};
  s.vel = {320, -100, 12};
  s.yaw = 1.5;
  s.pitch = -0.2;
  s.health = 92;
  s.armor = 50;
  s.ammo = 77;
  s.frags = 3;
  game::AvatarState next = s;
  next.pos += next.vel * 0.05;
  next.yaw += 0.02;

  core::MsgHeader h;
  h.origin = 0;
  h.subject = 0;
  h.frame = 1000;
  const auto key_body = core::encode_state_body(s);
  const auto delta_body = core::encode_state_body_delta(s, 1, next);
  const auto key_wire = core::seal(h, key_body, keys.key_pair(0));
  const auto delta_wire = core::seal(h, delta_body, keys.key_pair(0));

  constexpr std::size_t kHeader = 21 + 1;  // header + blob length
  std::printf("state update anatomy (bytes):\n");
  std::printf("  %-22s %8s %8s %8s %8s %8s\n", "", "payload", "header", "sig",
              "UDP/IP", "total");
  std::printf("  %-22s %8zu %8zu %8zu %8d %8zu\n", "keyframe",
              key_body.size() - 1, kHeader, crypto::kSignatureBytes, 28,
              key_wire.size() + 28);
  std::printf("  %-22s %8zu %8zu %8zu %8d %8zu\n", "delta (vs keyframe)",
              delta_body.size() - 2, kHeader, crypto::kSignatureBytes, 28,
              delta_wire.size() + 28);
  const double envelope =
      static_cast<double>(kHeader + crypto::kSignatureBytes + 28);
  std::printf("  security+transport envelope: %.0f B fixed per message "
              "(paper: ~100-bit signature on ~700-bit updates)\n\n",
              envelope);

  // Live effect on a 24-player session.
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(24, 1200, 42);
  auto run = [&](bool delta) {
    core::SessionOptions opts;
    opts.net = core::NetProfile::kKing;
    opts.loss_rate = 0.01;
    opts.watchmen.delta_updates = delta;
    core::WatchmenSession session(trace, map, opts);
    session.run();
    return std::make_pair(
        static_cast<double>(session.network().stats().bits_sent) / 1000.0 / 60.0 / 24.0,
        session.merged_update_ages().count());
  };
  const auto [full_kbps, full_updates] = run(false);
  const auto [delta_kbps, delta_updates] = run(true);
  std::printf("measured per-player upload, 24 players, 60 s:\n");
  std::printf("  full updates : %7.1f kbps (%zu usable updates received)\n",
              full_kbps, full_updates);
  std::printf("  delta-coded  : %7.1f kbps (%zu usable; %.1f%% saved)\n",
              delta_kbps, delta_updates,
              100.0 * (1.0 - delta_kbps / full_kbps));
  std::printf("\n-> delta coding shrinks state payloads ~40%%, but the signed "
              "envelope dominates the wire, capping end-to-end savings at a "
              "few percent — a real cost of per-message authentication that "
              "unsecured Quake-style delta networking does not pay.\n");
  return 0;
}
