#pragma once
// Shared helpers for the reproduction benches (one binary per paper
// table/figure; see DESIGN.md §4).

#include <cstdio>
#include <string>

#include "game/map.hpp"
#include "game/trace.hpp"

namespace watchmen::bench {

/// The paper's standard workload: a 48-player deathmatch on the
/// q3dm17-style map. `frames` defaults to 2 simulated minutes.
inline game::GameTrace standard_trace(std::size_t n_players = 48,
                                      std::size_t n_frames = 2400,
                                      std::uint64_t seed = 42,
                                      std::size_t n_humans = SIZE_MAX) {
  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig cfg;
  cfg.n_players = n_players;
  cfg.n_humans = n_humans == SIZE_MAX ? n_players : n_humans;
  cfg.n_frames = n_frames;
  cfg.seed = seed;
  return game::record_session(map, cfg);
}

inline void print_header(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

inline void print_bar(double fraction, int width = 40) {
  const int fill = static_cast<int>(fraction * width + 0.5);
  std::fputc('[', stdout);
  for (int i = 0; i < width; ++i) std::fputc(i < fill ? '#' : ' ', stdout);
  std::fputc(']', stdout);
}

}  // namespace watchmen::bench
