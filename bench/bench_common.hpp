#pragma once
// Shared helpers for the reproduction benches (one binary per paper
// table/figure; see DESIGN.md §4).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "game/map.hpp"
#include "game/trace.hpp"
#include "obs/json.hpp"

namespace watchmen::bench {

/// Common header fields every BENCH_*.json report opens with. The caller
/// owns begin_object()/end_object(); all reports flow through the one
/// obs::JsonWriter (same escaping and number formatting as the registry
/// snapshots), instead of each bench hand-rolling `out <<` JSON.
inline void report_header(obs::JsonWriter& j, const char* benchmark,
                          const std::string& map_name, std::size_t players,
                          std::size_t frames) {
  j.kv("benchmark", benchmark);
  j.kv("map", map_name);
  j.kv("players", players);
  j.kv("frames", frames);
}

/// Writes a finished report to `path`; prints a diagnostic and returns
/// false on failure (benches exit 2 on that).
inline bool write_report(const std::string& path, const std::string& doc,
                         const char* tool) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << tool << ": cannot write " << path << "\n";
    return false;
  }
  out << doc;
  return static_cast<bool>(out);
}

/// The paper's standard workload: a 48-player deathmatch on the
/// q3dm17-style map. `frames` defaults to 2 simulated minutes.
inline game::GameTrace standard_trace(std::size_t n_players = 48,
                                      std::size_t n_frames = 2400,
                                      std::uint64_t seed = 42,
                                      std::size_t n_humans = SIZE_MAX) {
  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig cfg;
  cfg.n_players = n_players;
  cfg.n_humans = n_humans == SIZE_MAX ? n_players : n_humans;
  cfg.n_frames = n_frames;
  cfg.seed = seed;
  return game::record_session(map, cfg);
}

inline void print_header(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

inline void print_bar(double fraction, int width = 40) {
  const int fill = static_cast<int>(fraction * width + 0.5);
  std::fputc('[', stdout);
  for (int i = 0; i < width; ++i) std::fputc(i < fill ? '#' : ' ', stdout);
  std::fputc(']', stdout);
}

}  // namespace watchmen::bench
