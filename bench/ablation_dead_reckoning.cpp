// Ablation: dead-reckoning predictor quality (the authors' companion work
// on interest modeling [16] shows prediction accuracy can be greatly
// improved; here we sweep the cheapest knob — velocity damping).
//
// A better predictor shrinks the honest deviation area ā, which tightens
// the ā + σ_a verification threshold — so guidance lies of a fixed
// magnitude stand out more. The sweep reports the honest calibration and
// the Fig. 6 guidance-detection outcome per predictor.

#include <cstdio>

#include "bench_common.hpp"
#include "sim/detection.hpp"

using namespace watchmen;

int main() {
  bench::print_header("Ablation", "Dead-reckoning predictor (velocity damping)");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(32, 1200, 42);

  std::printf("%-12s %14s %14s %12s %10s\n", "damping", "honest mean", "threshold",
              "detection", "FP-rate");
  for (double damping : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    core::SessionOptions opts;
    opts.net = core::NetProfile::kKing;
    opts.loss_rate = 0.01;
    opts.watchmen.dr_damping = damping;
    opts.watchmen.guidance_tolerance =
        sim::calibrate_guidance_tolerance(trace, map, opts);

    sim::DetectionConfig dc;
    dc.session = opts;
    const auto out =
        sim::run_detection(trace, map, sim::Verification::kGuidance, dc);
    std::printf("%-12.1f %11.0f u·s %11.0f u·s %11.1f%% %9.2f%%\n", damping,
                opts.watchmen.guidance_tolerance.mean,
                opts.watchmen.guidance_tolerance.threshold(),
                100 * out.success(), 100 * out.fp_rate());
  }

  std::printf("\n-> damping the predicted velocity cuts the honest deviation "
              "area (players turn every second or two), tightening the "
              "calibrated threshold; detection of fixed-magnitude guidance "
              "lies improves correspondingly. The companion work's goal-aware "
              "predictors push further in the same direction.\n");
  return 0;
}
