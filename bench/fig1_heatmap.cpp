// Fig. 1 reproduction: heatmap of player positions in a q3dm17-style
// deathmatch. (a) human-like players, (b) NPC bots on predetermined paths.
//
// The paper's point: presence is exponentially concentrated around
// strategic spots and items, so fixed-radius AOI filtering cannot bound
// the number of players in an area — the motivation for the
// multi-resolution subscription model. We print a log-normalized ASCII
// heatmap plus concentration statistics (Gini coefficient, top-cell
// shares), and show NPCs concentrate even more than humans.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace watchmen;

namespace {

constexpr int kGrid = 32;

std::vector<double> occupancy_grid(const game::GameTrace& trace,
                                   const game::GameMap& map) {
  std::vector<double> grid(kGrid * kGrid, 0.0);
  const Vec3 lo = map.bounds_min();
  const Vec3 hi = map.bounds_max();
  for (const auto& frame : trace.frames) {
    for (const auto& a : frame.avatars) {
      if (!a.alive) continue;
      const int gx = std::clamp(
          static_cast<int>((a.pos.x - lo.x) / (hi.x - lo.x) * kGrid), 0, kGrid - 1);
      const int gy = std::clamp(
          static_cast<int>((a.pos.y - lo.y) / (hi.y - lo.y) * kGrid), 0, kGrid - 1);
      grid[gy * kGrid + gx] += 1.0;
    }
  }
  return grid;
}

void print_heatmap(const std::vector<double>& grid) {
  // Log-normalized shading, darker = more presence (as in the paper).
  const double maxv = *std::max_element(grid.begin(), grid.end());
  const char* shades = " .:-=+*#%@";
  for (int y = kGrid - 1; y >= 0; --y) {
    std::fputs("  ", stdout);
    for (int x = 0; x < kGrid; ++x) {
      const double v = grid[y * kGrid + x];
      const double t = v > 0 ? std::log1p(v) / std::log1p(maxv) : 0.0;
      std::fputc(shades[std::clamp(static_cast<int>(t * 9.999), 0, 9)], stdout);
    }
    std::fputc('\n', stdout);
  }
}

double top_share(const std::vector<double>& grid, double cell_fraction) {
  std::vector<double> sorted = grid;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  double acc = 0.0;
  const auto k = static_cast<std::size_t>(
                     static_cast<double>(sorted.size()) * cell_fraction) +
                 1;
  for (std::size_t i = 0; i < std::min(k, sorted.size()); ++i) acc += sorted[i];
  return acc / total;
}

void report(const char* label, const std::vector<double>& grid) {
  std::printf("\n(%s)\n", label);
  print_heatmap(grid);
  std::printf("  concentration: gini=%.3f  top1%%cells=%.1f%%  top5%%=%.1f%%  "
              "top10%%=%.1f%% of presence\n",
              gini(grid), 100 * top_share(grid, 0.01),
              100 * top_share(grid, 0.05), 100 * top_share(grid, 0.10));
}

}  // namespace

int main() {
  bench::print_header("Fig. 1", "Heatmap of player positions (q3dm17-like map)");
  const game::GameMap map = game::make_longest_yard();

  // (a) Human-like players.
  const game::GameTrace humans = bench::standard_trace(48, 2400, 42, 48);
  const auto human_grid = occupancy_grid(humans, map);
  report("a: human movements", human_grid);

  // (b) NPC bots on predetermined patrol paths.
  const game::GameTrace bots = bench::standard_trace(48, 2400, 42, 0);
  const auto bot_grid = occupancy_grid(bots, map);
  report("b: NPC movements", bot_grid);

  // Paper claim: NPCs worsen the *peak* concentration (predetermined paths
  // and camped locations) — the quantity that breaks AOI fan-out bounds.
  const double npc_peak = top_share(bot_grid, 0.01);
  const double human_peak = top_share(human_grid, 0.01);
  std::printf("\nNPC top-1%%-cell share (%.1f%%) vs human (%.1f%%): %s\n",
              100 * npc_peak, 100 * human_peak,
              npc_peak > human_peak
                  ? "NPCs pile onto fewer spots, as the paper observes"
                  : "unexpected: NPCs concentrate less");

  // AOI consequence: players inside a fixed 512-unit radius around the
  // busiest cell, per frame — the unbounded-AOI problem.
  const game::GameMap& m = map;
  const auto busiest =
      std::max_element(human_grid.begin(), human_grid.end()) - human_grid.begin();
  const double cx = (static_cast<double>(busiest % kGrid) + 0.5) / kGrid *
                        (m.bounds_max().x - m.bounds_min().x) + m.bounds_min().x;
  const double cy = (static_cast<double>(busiest / kGrid) + 0.5) / kGrid *
                        (m.bounds_max().y - m.bounds_min().y) + m.bounds_min().y;
  RunningStats in_aoi;
  for (const auto& frame : humans.frames) {
    int count = 0;
    for (const auto& a : frame.avatars) {
      if (a.alive && std::hypot(a.pos.x - cx, a.pos.y - cy) < 512.0) ++count;
    }
    in_aoi.add(count);
  }
  std::printf("players inside a fixed 512u AOI at the hotspot: avg=%.1f max=%.0f "
              "(of 48) -> AOI filtering cannot bound update fan-out\n",
              in_aoi.mean(), in_aoi.max());
  return 0;
}
