// Table I reproduction: the cheat taxonomy and how Watchmen counters each
// entry. Every implementable cheat is injected into a live session and we
// report whether (and by whom) it was detected; architectural preventions
// are demonstrated or explained.

#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "bench_common.hpp"
#include "cheat/cheats.hpp"
#include "core/session.hpp"
#include "crypto/keys.hpp"

using namespace watchmen;

namespace {

struct RowResult {
  std::size_t injected = 0;
  std::size_t reports = 0;      // high-confidence reports vs the cheater
  std::set<std::string> by;     // vantages that reported
  bool flagged = false;
};

RowResult run_with(const game::GameTrace& trace, const game::GameMap& map,
                   core::Misbehavior* mb, cheat::LoggedCheat* logged,
                   PlayerId cheater = 0) {
  core::SessionOptions opts;
  opts.net = core::NetProfile::kKing;
  opts.loss_rate = 0.01;
  std::unordered_map<PlayerId, core::Misbehavior*> mbs{{cheater, mb}};
  core::WatchmenSession session(trace, map, opts, mbs);
  session.run();

  RowResult r;
  if (logged) r.injected = logged->cheat_frames().size();
  const double hc = session.detector().config().high_confidence_threshold;
  for (const auto& rep : session.detector().reports()) {
    if (rep.suspect == cheater && rep.weighted() >= hc) {
      ++r.reports;
      r.by.insert(rep.verifier == session.schedule().proxy_at(cheater, rep.frame)
                      ? "proxy"
                      : "others");
    }
  }
  r.flagged = session.detector().flagged(cheater);
  return r;
}

void print_row(const char* name, const RowResult& r, const char* expected) {
  std::string by;
  for (const auto& s : r.by) {
    if (!by.empty()) by += "+";
    by += s;
  }
  std::printf("%-22s %9zu %9zu %-14s %-10s (paper: %s)\n", name, r.injected,
              r.reports, by.empty() ? "-" : by.c_str(),
              r.flagged ? "DETECTED" : "missed", expected);
}

void print_prevented(const char* name, const char* how, const char* expected) {
  std::printf("%-22s %9s %9s %-14s %-10s (paper: %s)\n", name, "-", "-", how,
              "PREVENTED", expected);
}

}  // namespace

int main() {
  bench::print_header("Table I", "Cheating mechanisms and Watchmen's response");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(32, 800, 42);
  const crypto::KeyRegistry keys(42, trace.n_players);  // same as the session's
  const interest::InterestConfig icfg;

  std::printf("%-22s %9s %9s %-14s %-10s\n", "cheat", "injected", "hc-reports",
              "detected-by", "verdict");

  {
    cheat::EscapeCheat ch(400);
    print_row("escaping", run_with(trace, map, &ch, &ch),
              "detected by proxy and others");
  }
  {
    cheat::TimeCheat ch(10, 100, 700);
    print_row("time cheat (look-ahead)", run_with(trace, map, &ch, &ch),
              "detected by proxy and others");
  }
  print_prevented("network flooding", "no server", "prevented through distribution");
  {
    cheat::FastRateCheat ch(3, 100, 700);
    print_row("fast rate", run_with(trace, map, &ch, &ch),
              "detected by proxy and others");
  }
  {
    cheat::SuppressCorrectCheat ch(40, 20);
    print_row("suppress-correct", run_with(trace, map, &ch, &ch),
              "detected by proxy and others");
  }
  {
    cheat::ReplayCheat ch(7, 0.05);
    print_row("replay", run_with(trace, map, &ch, &ch),
              "prevented/detected by proxy and others");
  }
  {
    cheat::MaliciousProxyCheat ch(/*tamper=*/false, 1.0, 7);
    print_row("blind opponent", run_with(trace, map, &ch, &ch),
              "detected by proxy and others");
  }
  {
    cheat::SpeedHackCheat ch(7, 0.10, 6.0);
    print_row("client-side tampering", run_with(trace, map, &ch, &ch),
              "detected by sanity checks");
  }
  {
    cheat::AimbotCheat ch(0, trace, map);
    print_row("aimbots", run_with(trace, map, &ch, &ch),
              "detection by proxy (statistical analysis)");
  }
  {
    cheat::SpoofCheat ch(7, 0.05, 0, 5, keys);
    print_row("spoofing", run_with(trace, map, &ch, &ch),
              "detected by players");
  }
  {
    cheat::ConsistencyCheat ch(7, 0.05, 0, trace.n_players, keys);
    print_row("consistency cheat", run_with(trace, map, &ch, &ch),
              "prevented by proxy and others");
  }
  print_prevented("sniffing", "min. exposure", "prevented by minimizing exposure");
  {
    cheat::BogusSubscriptionCheat ch(7, 0.05, 0, trace, map,
                                     interest::SetKind::kInterest, icfg);
    print_row("maphack (IS harvest)", run_with(trace, map, &ch, &ch),
              "prevented by minimizing exposure");
  }
  print_prevented("rate analysis", "proxy+subs", "prevented by proxy & subscriptions");
  {
    cheat::MaliciousProxyCheat ch(/*tamper=*/true, 1.0, 7);
    print_row("proxy tampering", run_with(trace, map, &ch, &ch),
              "prevented by signatures");
  }
  return 0;
}
