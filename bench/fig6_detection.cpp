// Fig. 6 reproduction: success rates of the verification mechanisms.
//
// A cheater sends up to 10 % invalid messages of a given kind; detection
// success is a high-confidence report by at least one honest player, with
// tolerances calibrated on honest traffic (ā + σ_a) so false positives stay
// under the paper's 5 % bound. One bar per verification: position, kill,
// guidance, IS-subscription, VS-subscription.

#include <cstdio>

#include "bench_common.hpp"
#include "sim/detection.hpp"

using namespace watchmen;

int main() {
  bench::print_header("Fig. 6", "Success rates of verification mechanisms");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(48, 1200, 42);

  core::SessionOptions opts;
  opts.net = core::NetProfile::kKing;
  opts.loss_rate = 0.01;

  std::printf("calibrating guidance tolerance on honest traffic...\n");
  opts.watchmen.guidance_tolerance =
      sim::calibrate_guidance_tolerance(trace, map, opts);
  std::printf("  tolerance: mean=%.0f stddev=%.0f (flag above %.0f)\n\n",
              opts.watchmen.guidance_tolerance.mean,
              opts.watchmen.guidance_tolerance.stddev,
              opts.watchmen.guidance_tolerance.threshold());

  std::printf("%-12s %10s %10s %10s %10s   bar\n", "verification", "injected",
              "detected", "success", "FP-rate");
  for (int vi = 0; vi < sim::kNumVerifications; ++vi) {
    const auto v = static_cast<sim::Verification>(vi);
    sim::DetectionConfig dc;
    dc.session = opts;
    const sim::DetectionOutcome out = sim::run_detection(trace, map, v, dc);
    std::printf("%-12s %10zu %10zu %9.1f%% %9.2f%%   ", sim::to_string(v),
                out.injected, out.detected, 100 * out.success(),
                100 * out.fp_rate());
    bench::print_bar(out.success());
    std::printf("\n");
    if (out.fp_rate() > 0.05) {
      std::printf("  WARNING: false-positive rate above the paper's 5%% bound\n");
    }
  }
  std::printf("\n(paper: all five verifications detect the large majority of "
              "invalid messages at <=5%% false positives)\n");
  return 0;
}
