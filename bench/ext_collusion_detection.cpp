// Extension experiment: detection under collusion.
//
// The paper's headline claim is that cheating opportunities shrink "even in
// the presence of collusion" because proxies are random, verifiable and
// dynamic (§IV): a coalition cannot arrange to proxy its own members, so
// honest verifiers keep seeing the cheats. We make that quantitative:
// players 0..c-1 collude — player 0 speed-hacks while *every* coalition
// member suppresses its reports against fellow colluders — and we measure
// detection as the coalition grows.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "cheat/cheats.hpp"
#include "core/session.hpp"

using namespace watchmen;

int main() {
  bench::print_header("Extension", "Detection with colluding verifiers suppressed");
  const game::GameMap map = game::make_longest_yard();
  const game::GameTrace trace = bench::standard_trace(32, 1200, 42);

  std::printf("%-10s %10s %12s %12s %14s\n", "coalition", "injected",
              "detected", "success", "honest-proxy");
  for (std::size_t c = 1; c <= 12; ++c) {
    cheat::SpeedHackCheat ch(7, 0.10, 6.0);
    std::unordered_map<PlayerId, core::Misbehavior*> mbs{{0, &ch}};
    core::SessionOptions opts;
    opts.net = core::NetProfile::kKing;
    opts.loss_rate = 0.01;
    core::WatchmenSession session(trace, map, opts, mbs);
    session.run();

    // Collusion: reports from coalition members about coalition members
    // never reach the reputation/lobby layer.
    std::vector<Frame> hc;
    for (const auto& r : session.detector().reports()) {
      if (r.suspect != 0 || r.verifier < c) continue;  // suppressed
      if (r.type == verify::CheckType::kPosition && r.weighted() >= 6.0) {
        hc.push_back(r.frame);
      }
    }
    std::sort(hc.begin(), hc.end());
    std::size_t detected = 0;
    for (Frame fc : ch.cheat_frames()) {
      const auto lo = std::lower_bound(hc.begin(), hc.end(), fc - 3);
      if (lo != hc.end() && *lo <= fc + 3) ++detected;
    }

    // How often the cheater had an honest (non-coalition) proxy.
    std::size_t honest_rounds = 0, rounds = 0;
    for (std::int64_t r = 0; r < 1200 / 40; ++r) {
      ++rounds;
      honest_rounds += session.schedule().proxy_of(0, r) >= c;
    }

    std::printf("%-10zu %10zu %12zu %11.1f%% %13.0f%%\n", c,
                ch.cheat_frames().size(), detected,
                100.0 * static_cast<double>(detected) /
                    static_cast<double>(ch.cheat_frames().size()),
                100.0 * static_cast<double>(honest_rounds) /
                    static_cast<double>(rounds));
  }

  std::printf("\n-> even when a third of the game colludes to bury reports, "
              "the randomized dynamic proxies keep handing the cheater to "
              "honest verifiers most rounds, and IS witnesses cross-check "
              "position updates independently — detection degrades "
              "gracefully instead of collapsing.\n");
  return 0;
}
