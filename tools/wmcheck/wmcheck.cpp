// wmcheck — exhaustive explicit-state model checker for the Watchmen proxy
// handoff / failover / rejoin protocol (DESIGN.md §5g).
//
// Enumerates every interleaving of message delivery, loss, duplication,
// proxy crash, rejoin, retransmission and emergency-failover adoption up to
// the configured adversarial budgets, deduplicating states by canonical
// hash, and asserts the cheat-resistance invariants (exactly one active
// proxy, signed-origin acceptance only, proxy-only baseline acks, bounded
// retransmission). On violation it prints a minimal counterexample trace
// plus a machine-readable action list replayable with --replay.
//
// Exit codes: 0 = expectations met, 1 = invariant violated (or, with
// --expect-violation, NOT violated), 2 = usage / limits not reached.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/model_checker.hpp"
#include "core/protocol_model.hpp"

namespace {

using namespace watchmen::core::model;

constexpr Variant kAllVariants[] = {
    Variant::kFaithful,        Variant::kSkipVantageCheck,
    Variant::kAcceptUnsigned,  Variant::kAckUnsubscribed,
    Variant::kUnboundedRetransmit, Variant::kHandoffAnyRound,
};

void usage() {
  std::fprintf(stderr,
               "usage: wmcheck [options]\n"
               "  --variant NAME        protocol variant to check"
               " (default: faithful)\n"
               "  --list-variants       print variant names and exit\n"
               "  --nodes N             pool size incl. subject (default 4)\n"
               "  --rounds N            round horizon (default 6)\n"
               "  --loss N --dup N --crash N --rejoin N --forge N --ack N\n"
               "  --failover N          adversarial budgets (see ModelConfig)\n"
               "  --max-states N        distinct-state budget (default 2e6)\n"
               "  --max-depth N         BFS depth cap (default 64)\n"
               "  --min-states N        fail (exit 2) if fewer distinct"
               " states explored\n"
               "  --expect-violation    exit 0 iff a violation IS found\n"
               "  --replay FILE         replay an action list instead of"
               " exploring\n"
               "  --quiet               suppress the stats summary\n");
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

int replay(const ModelConfig& cfg, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "wmcheck: cannot open replay file %s\n", path.c_str());
    return 2;
  }
  std::vector<Action> actions;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int kind = 0, a = 0, b = 0;
    if (!(ls >> kind >> a >> b)) {
      std::fprintf(stderr, "wmcheck: bad replay line: %s\n", line.c_str());
      return 2;
    }
    actions.push_back({static_cast<ActionKind>(kind),
                       static_cast<std::int8_t>(a),
                       static_cast<std::int8_t>(b)});
  }
  for (const std::string& l : render_trace(cfg, actions)) {
    std::printf("%s\n", l.c_str());
  }
  // Report the final verdict of the replayed run.
  State s = initial_state(cfg);
  for (const Action& a : actions) s = apply(s, a, cfg);
  if (s.violations != 0) {
    std::printf("replay: VIOLATION %s\n",
                violations_to_string(s.violations).c_str());
    return 1;
  }
  std::printf("replay: no violation\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ModelConfig cfg;
  CheckLimits limits;
  std::uint64_t min_states = 0;
  bool expect_violation = false;
  bool quiet = false;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list-variants") {
      for (const Variant v : kAllVariants) std::printf("%s\n", to_string(v));
      return 0;
    } else if (arg == "--variant") {
      const char* name = next();
      bool found = false;
      for (const Variant v : kAllVariants) {
        if (name && std::strcmp(name, to_string(v)) == 0) {
          cfg.variant = v;
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "wmcheck: unknown variant %s\n",
                     name ? name : "(missing)");
        return 2;
      }
    } else if (arg == "--nodes" || arg == "--rounds") {
      const char* val = next();
      std::uint64_t v = 0;
      if (!val || !parse_u64(val, v) || v == 0 ||
          (arg == "--nodes" && v > static_cast<std::uint64_t>(kMaxNodes))) {
        usage();
        return 2;
      }
      (arg == "--nodes" ? cfg.n_nodes : cfg.max_rounds) = static_cast<int>(v);
    } else if (arg == "--loss" || arg == "--dup" || arg == "--crash" ||
               arg == "--rejoin" || arg == "--forge" || arg == "--ack" ||
               arg == "--failover") {
      const char* val = next();
      std::uint64_t v = 0;
      if (!val || !parse_u64(val, v)) {
        usage();
        return 2;
      }
      int* slot = arg == "--loss"     ? &cfg.loss_budget
                  : arg == "--dup"    ? &cfg.dup_budget
                  : arg == "--crash"  ? &cfg.crash_budget
                  : arg == "--rejoin" ? &cfg.rejoin_budget
                  : arg == "--forge"  ? &cfg.forge_budget
                  : arg == "--ack"    ? &cfg.ack_budget
                                      : &cfg.failover_budget;
      *slot = static_cast<int>(v);
    } else if (arg == "--max-states" || arg == "--max-depth" ||
               arg == "--min-states") {
      const char* val = next();
      std::uint64_t v = 0;
      if (!val || !parse_u64(val, v)) {
        usage();
        return 2;
      }
      if (arg == "--max-states") limits.max_states = v;
      else if (arg == "--max-depth") limits.max_depth = v;
      else min_states = v;
    } else if (arg == "--expect-violation") {
      expect_violation = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--replay") {
      const char* val = next();
      if (!val) {
        usage();
        return 2;
      }
      replay_path = val;
    } else {
      usage();
      return 2;
    }
  }

  if (!replay_path.empty()) return replay(cfg, replay_path);

  const CheckResult res = check(cfg, limits);

  if (!quiet) {
    std::printf("wmcheck: variant=%s nodes=%d rounds=%d\n",
                to_string(cfg.variant), cfg.n_nodes, cfg.max_rounds);
    std::printf(
        "  states=%llu transitions=%llu quiescent=%llu depth=%llu "
        "overflow=%llu exhausted=%s\n",
        static_cast<unsigned long long>(res.states_explored),
        static_cast<unsigned long long>(res.transitions),
        static_cast<unsigned long long>(res.quiescent_states),
        static_cast<unsigned long long>(res.max_depth_reached),
        static_cast<unsigned long long>(res.overflow_states),
        res.exhausted ? "yes" : "no");
  }

  if (res.found_violation) {
    std::printf("wmcheck: VIOLATION %s%s\n",
                violations_to_string(res.counterexample.violations).c_str(),
                res.counterexample.at_quiescence ? " (at quiescence)" : "");
    std::printf("counterexample (%zu actions, minimal):\n",
                res.counterexample.actions.size());
    for (const std::string& l : res.counterexample.trace) {
      std::printf("%s\n", l.c_str());
    }
    std::printf("replayable action list (wmcheck --replay):\n");
    for (const Action& a : res.counterexample.actions) {
      std::printf("%d %d %d\n", static_cast<int>(a.kind), a.a, a.b);
    }
    return expect_violation ? 0 : 1;
  }

  if (expect_violation) {
    std::fprintf(stderr,
                 "wmcheck: expected a violation for variant %s but the "
                 "explorer found none (states=%llu, exhausted=%s)\n",
                 to_string(cfg.variant),
                 static_cast<unsigned long long>(res.states_explored),
                 res.exhausted ? "yes" : "no");
    return 1;
  }
  if (min_states != 0 && res.states_explored < min_states) {
    std::fprintf(stderr,
                 "wmcheck: explored %llu distinct states, below the required "
                 "%llu — the model or budgets shrank; this run proves less "
                 "than CI demands\n",
                 static_cast<unsigned long long>(res.states_explored),
                 static_cast<unsigned long long>(min_states));
    return 2;
  }
  if (!quiet) std::printf("wmcheck: all invariants hold\n");
  return 0;
}
