// wmproc: multi-process chaos harness (ISSUE 9 acceptance gate).
//
// The parent binds one UDP loopback socket per player (port 0 — parallel-CI
// safe), forks one child process per player group, and paces nothing: each
// child runs its own WatchmenSession over the SAME recorded trace, simulates
// only its local players (SessionOptions::local_players), and reaches the
// others through the inherited sockets (UdpTransport::Options::fds/ports).
// Virtual frames are paced against the wall clock (kFramePeriod per frame)
// so the processes stay loosely in step, exactly the discipline a real
// client loop would impose.
//
// Mid-round the parent SIGKILLs the second group — a real crash: no
// destructors, no goodbye datagrams, sockets simply go quiet. The surviving
// group's liveness watchdogs must grade the silence and run the emergency
// proxy failover. At the scripted rejoin frame the parent re-forks the
// group; the new process reclaims the same sockets (the parent kept its
// copies open across the kill), starts at SessionOptions::start_frame, and
// its peers run crash recovery back into the pool.
//
// The parent gates (exit 0/1):
//   * every surviving child reports zero honest players flagged;
//   * at least one emergency failover adoption happened;
//   * the re-forked group completes the trace.
//
// Scripted CrashEvents for the killed players ride in every child's
// FaultPlan so detectors discount the blackout window and absolve the
// silence evidence on rejoin — churn, not cheating.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "game/map.hpp"
#include "game/trace.hpp"
#include "net/fault.hpp"
#include "net/fault_shim.hpp"
#include "net/latency.hpp"
#include "net/udp_transport.hpp"

using namespace watchmen;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::size_t kPlayers = 6;
constexpr std::size_t kGroupSize = 3;  // players [0,3) and [3,6)
constexpr Frame kFrames = 360;
constexpr Frame kCrashFrame = 150;   // mid-round (rounds are 40 frames)
constexpr Frame kRejoinFrame = 240;  // > crash + watchdog_dead_frames
constexpr std::uint64_t kSeed = 42;
constexpr auto kFramePeriod = std::chrono::milliseconds(5);

int group_of(PlayerId p) { return p < kGroupSize ? 0 : 1; }

std::uint32_t control_class_mask() {
  std::uint32_t mask = 0;
  for (const core::MsgType t :
       {core::MsgType::kSubscribe, core::MsgType::kHandoff,
        core::MsgType::kChurnNotice, core::MsgType::kAck,
        core::MsgType::kRejoinNotice}) {
    mask |= 1u << static_cast<std::uint8_t>(t);
  }
  return mask;
}

struct Endpoint {
  int fd = -1;
  std::uint16_t port = 0;
};

Endpoint bind_loopback() {
  Endpoint ep;
  ep.fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ep.fd < 0) throw std::runtime_error("wmproc: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(ep.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw std::runtime_error("wmproc: bind() failed");
  }
  sockaddr_in got{};
  socklen_t len = sizeof got;
  if (::getsockname(ep.fd, reinterpret_cast<sockaddr*>(&got), &len) != 0) {
    throw std::runtime_error("wmproc: getsockname() failed");
  }
  ep.port = ntohs(got.sin_port);
  return ep;
}

net::FaultPlan crash_plan() {
  net::FaultPlan plan;
  for (PlayerId p = 0; p < kPlayers; ++p) {
    if (group_of(p) == 1) plan.crashes.push_back({kCrashFrame, p, kRejoinFrame});
  }
  return plan;
}

core::SessionOptions child_options(int group,
                                   const std::vector<Endpoint>& eps,
                                   Frame start_frame) {
  core::SessionOptions opts;
  opts.watchmen.reliable_control = true;
  opts.watchmen.liveness_watchdog = true;
  opts.watchmen.rate_loss_allowance = 0.30;
  opts.watchmen.starve_loss_allowance = 0.8;
  opts.watchmen.starve_floor = 0.15;
  opts.seed = kSeed;
  opts.faults = crash_plan();
  opts.start_frame = start_frame;
  for (PlayerId p = 0; p < kPlayers; ++p) {
    if (group_of(p) == group) opts.local_players.push_back(p);
  }
  opts.transport_factory = [group, &eps](std::size_t n) {
    net::UdpTransport::Options o;
    o.n_nodes = n;
    o.control_class_mask = control_class_mask();
    o.fds.resize(n, -1);
    o.ports.resize(n, 0);
    for (PlayerId p = 0; p < n; ++p) {
      o.ports[p] = eps[p].port;
      if (group_of(p) == group) {
        o.fds[p] = eps[p].fd;  // inherited across fork; transport owns it
      } else {
        ::close(eps[p].fd);  // never read a sibling's socket
      }
    }
    return std::make_unique<net::FaultShim>(
        std::make_unique<net::UdpTransport>(std::move(o)),
        std::make_unique<net::FixedLatency>(25.0), 0.01, kSeed);
  };
  return opts;
}

/// Child body: replay the shared trace for this group's players, pacing
/// virtual frames against the wall clock, then report through `report_fd`.
int run_child(int group, const std::vector<Endpoint>& eps,
              Clock::time_point epoch, Frame start_frame, int report_fd) {
  const game::GameMap map = game::make_longest_yard();
  game::SessionConfig cfg;
  cfg.n_players = kPlayers;
  cfg.n_frames = static_cast<std::size_t>(kFrames);
  cfg.seed = kSeed;
  const game::GameTrace trace = game::record_session(map, cfg);

  core::WatchmenSession session(trace, map, child_options(group, eps,
                                                          start_frame));
  for (Frame f = start_frame; f < kFrames; ++f) {
    std::this_thread::sleep_until(epoch + f * kFramePeriod);
    session.run_frames(1);
  }

  std::size_t flagged = 0;
  std::uint64_t adoptions = 0, deaths = 0;
  for (PlayerId p = 0; p < kPlayers; ++p) {
    if (session.connected(p) && session.detector().flagged(p)) ++flagged;
    if (!session.is_local(p)) continue;
    adoptions += session.peer(p).metrics().failover_adoptions;
    deaths += session.peer(p).metrics().watchdog_deaths;
  }
  char line[128];
  const int n = std::snprintf(
      line, sizeof line, "group %d flagged %zu adoptions %llu deaths %llu\n",
      group, flagged, static_cast<unsigned long long>(adoptions),
      static_cast<unsigned long long>(deaths));
  if (n > 0) {
    [[maybe_unused]] const ssize_t w = ::write(report_fd, line, n);
  }
  return flagged == 0 ? 0 : 1;
}

struct ChildProc {
  pid_t pid = -1;
  int report_rd = -1;
};

ChildProc spawn(int group, const std::vector<Endpoint>& eps,
                Clock::time_point epoch, Frame start_frame) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) throw std::runtime_error("wmproc: pipe() failed");
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("wmproc: fork() failed");
  if (pid == 0) {
    ::close(pipefd[0]);
    int code = 2;
    try {
      code = run_child(group, eps, epoch, start_frame, pipefd[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wmproc child %d: %s\n", group, e.what());
    }
    ::_exit(code);
  }
  ::close(pipefd[1]);
  return ChildProc{pid, pipefd[0]};
}

std::string drain(int fd) {
  std::string out;
  char buf[256];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r <= 0) break;
    out.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return out;
}

/// "... adoptions 3 ..." -> 3 (0 when the key is absent).
std::uint64_t parse_field(const std::string& report, const char* key) {
  const auto at = report.find(key);
  if (at == std::string::npos) return 0;
  return std::strtoull(report.c_str() + at + std::strlen(key), nullptr, 10);
}

}  // namespace

int main() {
  std::vector<Endpoint> eps(kPlayers);
  for (auto& ep : eps) ep = bind_loopback();

  // Margin for both children to record the trace before frame 0.
  const auto epoch = Clock::now() + std::chrono::milliseconds(500);
  ChildProc survivor = spawn(0, eps, epoch, 0);
  ChildProc victim = spawn(1, eps, epoch, 0);

  // A real mid-round crash: SIGKILL, no teardown. The parent's copies of
  // the group's sockets keep the endpoints alive for the re-fork.
  std::this_thread::sleep_until(epoch + kCrashFrame * kFramePeriod);
  ::kill(victim.pid, SIGKILL);
  int status = 0;
  ::waitpid(victim.pid, &status, 0);
  ::close(victim.report_rd);
  std::printf("wmproc: killed group 1 at frame %lld\n",
              static_cast<long long>(kCrashFrame));

  std::this_thread::sleep_until(epoch + kRejoinFrame * kFramePeriod);
  ChildProc rejoiner = spawn(1, eps, epoch, kRejoinFrame);
  std::printf("wmproc: re-forked group 1 at frame %lld\n",
              static_cast<long long>(kRejoinFrame));

  int survivor_status = 0, rejoiner_status = 0;
  ::waitpid(survivor.pid, &survivor_status, 0);
  ::waitpid(rejoiner.pid, &rejoiner_status, 0);
  const std::string survivor_report = drain(survivor.report_rd);
  const std::string rejoiner_report = drain(rejoiner.report_rd);
  std::printf("%s%s", survivor_report.c_str(), rejoiner_report.c_str());

  const bool exits_ok =
      WIFEXITED(survivor_status) && WEXITSTATUS(survivor_status) == 0 &&
      WIFEXITED(rejoiner_status) && WEXITSTATUS(rejoiner_status) == 0;
  const std::uint64_t adoptions =
      parse_field(survivor_report, "adoptions ") +
      parse_field(rejoiner_report, "adoptions ");
  const bool adopted = adoptions >= 1;

  std::printf("wmproc: exits %s, failover adoptions %llu (>= 1: %s)\n",
              exits_ok ? "clean" : "FAILED",
              static_cast<unsigned long long>(adoptions),
              adopted ? "yes" : "NO");
  for (const auto& ep : eps) ::close(ep.fd);
  return exits_ok && adopted ? 0 : 1;
}
