#!/usr/bin/env python3
"""Unit tests for wmlint.py (stdlib unittest — run directly or via ctest)."""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import wmlint  # noqa: E402


def lint_tree(files: dict) -> list:
    """Writes {relpath: content} into a temp repo and lints every file."""
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        findings = []
        for rel, content in files.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(content)
        for rel in files:
            findings += wmlint.lint_file(root / rel, root)
        return findings


def checks(findings):
    return sorted(f.check for f in findings)


class RawRandomTest(unittest.TestCase):
    def test_flags_rand_in_src(self):
        fs = lint_tree({"src/game/x.cpp": "int f() { return rand(); }\n"})
        self.assertIn("raw-random", checks(fs))

    def test_flags_random_device_and_wall_clock(self):
        fs = lint_tree({"src/game/x.cpp":
                        "std::random_device rd;\n"
                        "auto t = std::chrono::steady_clock::now();\n"})
        self.assertEqual(checks(fs).count("raw-random"), 2)

    def test_rng_hpp_is_exempt(self):
        fs = lint_tree({"src/util/rng.hpp":
                        "#pragma once\nint seed_from(std::random_device& r);\n"})
        self.assertEqual(fs, [])

    def test_member_clock_call_not_flagged(self):
        fs = lint_tree({"src/net/x.cpp":
                        "Frame f() { return net_->clock().frame(); }\n"})
        self.assertEqual(fs, [])

    def test_libc_clock_flagged(self):
        fs = lint_tree({"src/net/x.cpp": "double t = clock();\n"})
        self.assertIn("raw-random", checks(fs))

    def test_allow_annotation(self):
        fs = lint_tree({"src/game/x.cpp":
                        "// wmlint: allow(raw-random)\n"
                        "int f() { return rand(); }\n"})
        self.assertEqual(fs, [])

    def test_outside_src_not_flagged(self):
        fs = lint_tree({"bench/x.cpp": "int f() { return rand(); }\n"})
        self.assertEqual(fs, [])

    def test_strand_not_flagged(self):
        fs = lint_tree({"src/net/x.cpp": "io.strand(queue);\n"})
        self.assertEqual(fs, [])


class WireOrderTest(unittest.TestCase):
    def test_flags_unsorted_iteration(self):
        fs = lint_tree({"src/core/x.cpp":
                        "std::unordered_map<int, int> subs_;\n"
                        "void f() {\n"
                        "  for (const auto& [k, v] : subs_) send(k);\n"
                        "}\n"})
        self.assertIn("wire-order", checks(fs))

    def test_sort_after_loop_is_exempt(self):
        fs = lint_tree({"src/core/x.cpp":
                        "std::unordered_map<int, int> subs_;\n"
                        "std::vector<int> f() {\n"
                        "  std::vector<int> out;\n"
                        "  for (const auto& [k, v] : subs_) out.push_back(k);\n"
                        "  std::sort(out.begin(), out.end());\n"
                        "  return out;\n"
                        "}\n"})
        self.assertEqual(fs, [])

    def test_member_declared_in_companion_header(self):
        fs = lint_tree({
            "src/core/x.hpp": "#pragma once\n"
                              "std::unordered_map<int, int> proxied_;\n",
            "src/core/x.cpp": '#include "core/x.hpp"\n'
                              "void f() {\n"
                              "  for (auto& [q, ps] : proxied_) send(q);\n"
                              "}\n"})
        self.assertIn("wire-order", checks(fs))

    def test_ordered_map_not_flagged(self):
        fs = lint_tree({"src/core/x.cpp":
                        "std::map<int, int> subs_;\n"
                        "void f() { for (auto& [k, v] : subs_) send(k); }\n"})
        self.assertEqual(fs, [])

    def test_allow_annotation(self):
        fs = lint_tree({"src/core/x.cpp":
                        "std::unordered_map<int, int> subs_;\n"
                        "void f() {\n"
                        "  // per-element work is order independent\n"
                        "  // wmlint: allow(wire-order)\n"
                        "  for (auto& [k, v] : subs_) bump(v);\n"
                        "}\n"})
        self.assertEqual(fs, [])


class DecoderAbortTest(unittest.TestCase):
    def test_flags_assert_in_decoder(self):
        fs = lint_tree({"src/core/x.cpp":
                        "int decode_thing(Span b) {\n"
                        "  assert(b.size() > 4);\n"
                        "  return 0;\n"
                        "}\n"})
        self.assertIn("decoder-abort", checks(fs))

    def test_flags_abort_and_logic_error(self):
        fs = lint_tree({"src/core/x.cpp":
                        "Msg read_header(Reader& r) {\n"
                        "  if (r.done()) abort();\n"
                        "  if (bad) throw std::logic_error(\"x\");\n"
                        "  return m;\n"
                        "}\n"})
        self.assertEqual(checks(fs).count("decoder-abort"), 2)

    def test_decode_error_is_fine(self):
        fs = lint_tree({"src/core/x.cpp":
                        "int decode_thing(Span b) {\n"
                        "  if (b.empty()) throw DecodeError(\"empty\");\n"
                        "  return b[0];\n"
                        "}\n"})
        self.assertEqual(fs, [])

    def test_assert_outside_decoder_not_flagged(self):
        fs = lint_tree({"src/core/x.cpp":
                        "void step_world(World& w) {\n"
                        "  assert(w.ok());\n"
                        "}\n"})
        self.assertEqual(fs, [])

    def test_static_assert_not_flagged(self):
        fs = lint_tree({"src/core/x.cpp":
                        "int decode_thing(Span b) {\n"
                        "  static_assert(sizeof(int) == 4);\n"
                        "  return 0;\n"
                        "}\n"})
        self.assertEqual(fs, [])


class MutexGuardedTest(unittest.TestCase):
    def test_unguarded_mutex_flagged(self):
        fs = lint_tree({"src/net/x.hpp":
                        "#pragma once\n"
                        "class X {\n"
                        "  mutable util::Mutex mu_;\n"
                        "  int count_ = 0;\n"
                        "};\n"})
        self.assertIn("mutex-guarded", checks(fs))
        self.assertIn("mu_", [f.msg for f in fs if f.check == "mutex-guarded"][0])

    def test_guarded_mutex_clean(self):
        fs = lint_tree({"src/net/x.hpp":
                        "#pragma once\n"
                        "class X {\n"
                        "  mutable util::Mutex mu_;\n"
                        "  int count_ GUARDED_BY(mu_) = 0;\n"
                        "};\n"})
        self.assertEqual(fs, [])

    def test_raw_std_mutex_flagged(self):
        fs = lint_tree({"src/core/y.hpp":
                        "#pragma once\nstd::mutex lock_;\n"})
        self.assertIn("mutex-guarded", checks(fs))

    def test_guard_must_name_this_mutex(self):
        fs = lint_tree({"src/core/y.hpp":
                        "#pragma once\n"
                        "std::mutex a_;\nstd::mutex b_;\n"
                        "int x_ GUARDED_BY(a_) = 0;\n"})
        self.assertEqual(checks(fs), ["mutex-guarded"])
        self.assertIn("b_", fs[0].msg)

    def test_pt_guarded_by_counts(self):
        fs = lint_tree({"src/core/y.hpp":
                        "#pragma once\n"
                        "std::mutex mu_;\n"
                        "int* p_ PT_GUARDED_BY(mu_) = nullptr;\n"})
        self.assertEqual(fs, [])

    def test_reference_member_not_flagged(self):
        # Lock-holder classes store `Mutex&` — not a mutex declaration.
        fs = lint_tree({"src/util/x.hpp":
                        "#pragma once\nclass L { Mutex& mu_; };\n"})
        self.assertEqual(fs, [])

    def test_allow_annotation(self):
        fs = lint_tree({"src/net/x.hpp":
                        "#pragma once\n"
                        "// held only in ctor  // wmlint: allow(mutex-guarded)\n"
                        "std::mutex init_mu_;\n"})
        self.assertEqual(fs, [])

    def test_outside_src_not_flagged(self):
        fs = lint_tree({"tests/x.cpp": "std::mutex mu_;\n"})
        self.assertEqual(fs, [])


class TransportFactoryTest(unittest.TestCase):
    def test_direct_construction_flagged(self):
        fs = lint_tree({"bench/x.cpp":
                        "net::SimNetwork net(16, lat(), 0.0, 1);\n"})
        self.assertIn("transport-factory", checks(fs))

    def test_make_unique_flagged(self):
        fs = lint_tree({"src/core/x.cpp":
                        "auto n = std::make_unique<net::SimNetwork>(4);\n"})
        self.assertIn("transport-factory", checks(fs))

    def test_new_expression_flagged(self):
        fs = lint_tree({"examples/x.cpp":
                        "auto* n = new net::SimNetwork(4, lat(), 0.0, 1);\n"})
        self.assertIn("transport-factory", checks(fs))

    def test_factory_call_clean(self):
        fs = lint_tree({"bench/x.cpp":
                        "auto net = net::make_transport(std::move(tc));\n"})
        self.assertEqual(fs, [])

    def test_net_layer_is_exempt(self):
        fs = lint_tree({"src/net/transport.cpp":
                        "return std::make_unique<SimNetwork>(n, std::move(l),"
                        " r, s);\n"})
        self.assertEqual(checks(fs), [])

    def test_tests_are_exempt(self):
        fs = lint_tree({"tests/x.cpp":
                        "SimNetwork net(4, lat(), 0.0, 1);\n"})
        self.assertEqual(fs, [])

    def test_comment_mention_clean(self):
        fs = lint_tree({"src/core/x.cpp":
                        "// mirrors SimNetwork (net/network.hpp) exactly\n"
                        "int x = 0;\n"})
        self.assertEqual(fs, [])

    def test_reference_type_clean(self):
        fs = lint_tree({"src/core/x.cpp":
                        "void wire(net::SimNetwork& net);\n"})
        self.assertEqual(fs, [])

    def test_allow_annotation(self):
        fs = lint_tree({"bench/x.cpp":
                        "// wmlint: allow(transport-factory)\n"
                        "net::SimNetwork net(16, lat(), 0.0, 1);\n"})
        self.assertEqual(fs, [])


class IncludeHygieneTest(unittest.TestCase):
    def test_missing_pragma_once(self):
        fs = lint_tree({"src/util/x.hpp": "#include <vector>\n"})
        self.assertIn("include-hygiene", checks(fs))

    def test_pragma_once_after_comment_ok(self):
        fs = lint_tree({"src/util/x.hpp":
                        "// A header comment.\n#pragma once\n"})
        self.assertEqual(fs, [])

    def test_dotdot_include(self):
        fs = lint_tree({"src/util/x.cpp": '#include "../game/map.hpp"\n'})
        self.assertIn("include-hygiene", checks(fs))

    def test_own_header_first(self):
        fs = lint_tree({
            "src/game/map.hpp": "#pragma once\n",
            "src/game/map.cpp": '#include "util/vec.hpp"\n'
                                '#include "game/map.hpp"\n'})
        self.assertIn("include-hygiene", checks(fs))

    def test_own_header_first_satisfied(self):
        fs = lint_tree({
            "src/game/map.hpp": "#pragma once\n",
            "src/game/map.cpp": '#include "game/map.hpp"\n'
                                '#include "util/vec.hpp"\n'})
        self.assertEqual(fs, [])


class WhitespaceTest(unittest.TestCase):
    def test_tab_and_trailing(self):
        fs = lint_tree({"src/util/x.cpp": "int a;\t\nint b; \nint c;\n"})
        self.assertEqual(checks(fs),
                         ["whitespace", "whitespace", "whitespace"])

    def test_missing_final_newline(self):
        fs = lint_tree({"src/util/x.cpp": "int a;"})
        self.assertEqual(checks(fs), ["whitespace"])

    def test_clean_file(self):
        fs = lint_tree({"src/util/x.cpp": "int a;\n"})
        self.assertEqual(fs, [])


class MsgTypeCorpusTest(unittest.TestCase):
    ENUM = ("#pragma once\n"
            "enum class MsgType : std::uint8_t {\n"
            "  kStateUpdate = 0,\n"
            "  kAck = 1,\n"
            "  kNumMsgTypes,\n"
            "};\n")

    @staticmethod
    def corpus_tree(enum: str, gen: str) -> list:
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            (root / "src" / "core").mkdir(parents=True)
            (root / "fuzz").mkdir()
            (root / "src" / "core" / "messages.hpp").write_text(enum)
            (root / "fuzz" / "gen_corpus.cpp").write_text(gen)
            return wmlint.check_msgtype_corpus(root)

    def test_all_seeded_is_clean(self):
        fs = self.corpus_tree(
            self.ENUM,
            "put(sealed(MsgType::kStateUpdate, ...));\n"
            "put(sealed(MsgType::kAck, ...));\n")
        self.assertEqual(fs, [])

    def test_missing_seed_flagged(self):
        fs = self.corpus_tree(
            self.ENUM, "put(sealed(MsgType::kStateUpdate, ...));\n")
        self.assertEqual([f.check for f in fs], ["msgtype-corpus"])
        self.assertIn("kAck", fs[0].msg)

    def test_allow_annotation(self):
        enum = self.ENUM.replace(
            "  kAck = 1,\n",
            "  kAck = 1,  // wmlint: allow(msgtype-corpus)\n")
        fs = self.corpus_tree(
            enum, "put(sealed(MsgType::kStateUpdate, ...));\n")
        self.assertEqual(fs, [])

    def test_missing_files_skip_silently(self):
        with tempfile.TemporaryDirectory() as td:
            self.assertEqual(wmlint.check_msgtype_corpus(Path(td)), [])


class RecordCorpusTest(unittest.TestCase):
    ENUMS = ("#pragma once\n"
             "enum class RosterCheat : std::uint8_t {\n"
             "  kSpeedHack = 0,\n"
             "  kEscape = 1,\n"
             "};\n"
             "enum class RecEventKind : std::uint8_t {\n"
             "  kCheckpoint = 0,\n"
             "  kDisconnect = 1,\n"
             "};\n")

    @staticmethod
    def corpus_tree(enums: str, gen: str) -> list:
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            (root / "src" / "obs").mkdir(parents=True)
            (root / "fuzz").mkdir()
            (root / "src" / "obs" / "recorder.hpp").write_text(enums)
            (root / "fuzz" / "gen_corpus.cpp").write_text(gen)
            return wmlint.check_record_corpus(root)

    def test_all_seeded_is_clean(self):
        fs = self.corpus_tree(
            self.ENUMS,
            "// RosterCheat::kSpeedHack RosterCheat::kEscape\n"
            "// RecEventKind::kCheckpoint RecEventKind::kDisconnect\n")
        self.assertEqual(fs, [])

    def test_missing_member_flagged_per_enum(self):
        fs = self.corpus_tree(
            self.ENUMS,
            "// RosterCheat::kSpeedHack RecEventKind::kCheckpoint\n")
        self.assertEqual([f.check for f in fs],
                         ["record-corpus", "record-corpus"])
        self.assertIn("RosterCheat::kEscape", fs[0].msg)
        self.assertIn("RecEventKind::kDisconnect", fs[1].msg)

    def test_allow_annotation(self):
        enums = self.ENUMS.replace(
            "  kEscape = 1,\n",
            "  kEscape = 1,  // wmlint: allow(record-corpus)\n")
        fs = self.corpus_tree(
            enums,
            "// RosterCheat::kSpeedHack\n"
            "// RecEventKind::kCheckpoint RecEventKind::kDisconnect\n")
        self.assertEqual(fs, [])

    def test_missing_files_skip_silently(self):
        with tempfile.TemporaryDirectory() as td:
            self.assertEqual(wmlint.check_record_corpus(Path(td)), [])


class PenaltyReasonTest(unittest.TestCase):
    ENUM = ("enum class PenaltyReason : std::uint8_t {\n"
            "  kPositionViolation = 0,\n"
            "  kWireViolation = 1,\n"
            "};\n")

    @staticmethod
    def penalty_tree(enum: str, cpp: str, test: str) -> list:
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            (root / "src" / "reputation").mkdir(parents=True)
            (root / "tests").mkdir()
            (root / "src" / "reputation" / "misbehavior_engine.hpp").write_text(enum)
            (root / "src" / "reputation" / "misbehavior_engine.cpp").write_text(cpp)
            (root / "tests" / "misbehavior_test.cpp").write_text(test)
            return wmlint.check_penalty_reason(root)

    def test_cased_and_tested_is_clean(self):
        fs = self.penalty_tree(
            self.ENUM,
            "case PenaltyReason::kPositionViolation:\n"
            "case PenaltyReason::kWireViolation:\n",
            "PenaltyReason::kPositionViolation PenaltyReason::kWireViolation\n")
        self.assertEqual(fs, [])

    def test_missing_string_case_flagged(self):
        fs = self.penalty_tree(
            self.ENUM,
            "case PenaltyReason::kPositionViolation:\n",
            "PenaltyReason::kPositionViolation PenaltyReason::kWireViolation\n")
        self.assertEqual([f.check for f in fs], ["penalty-reason"])
        self.assertIn("to_string", fs[0].msg)
        self.assertIn("kWireViolation", fs[0].msg)

    def test_untested_member_flagged(self):
        fs = self.penalty_tree(
            self.ENUM,
            "case PenaltyReason::kPositionViolation:\n"
            "case PenaltyReason::kWireViolation:\n",
            "PenaltyReason::kPositionViolation\n")
        self.assertEqual([f.check for f in fs], ["penalty-reason"])
        self.assertIn("never named in tests/", fs[0].msg)

    def test_allow_annotation(self):
        enum = self.ENUM.replace(
            "  kWireViolation = 1,\n",
            "  kWireViolation = 1,  // wmlint: allow(penalty-reason)\n")
        fs = self.penalty_tree(
            enum,
            "case PenaltyReason::kPositionViolation:\n",
            "PenaltyReason::kPositionViolation\n")
        self.assertEqual(fs, [])

    def test_missing_files_skip_silently(self):
        with tempfile.TemporaryDirectory() as td:
            self.assertEqual(wmlint.check_penalty_reason(Path(td)), [])


class CliTest(unittest.TestCase):
    def test_exit_codes(self):
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            (root / "src").mkdir()
            (root / "src" / "ok.cpp").write_text("int a;\n")
            self.assertEqual(wmlint.main(["--root", td]), 0)
            (root / "src" / "bad.cpp").write_text("int b = rand();\n")
            self.assertEqual(wmlint.main(["--root", td]), 1)
            self.assertEqual(wmlint.main(["--root", str(root / "nope")]), 2)


if __name__ == "__main__":
    unittest.main()
