#!/usr/bin/env python3
"""wmlint — Watchmen-specific lint for invariants generic tools can't express.

Checks
------
raw-random      No rand()/srand()/std::random_device/std::mt19937/time()/
                gettimeofday()/clock() in src/: every source of randomness or
                time must go through util/rng.hpp or net/clock.hpp, or whole
                sessions stop being reproducible from a single seed (and the
                verifiable proxy assignment of PAPER.md §III-B breaks).
wire-order      No range-for over a std::unordered_{map,set} whose result can
                feed protocol or wire-order decisions: hash iteration order is
                not part of the protocol. A loop is exempt when a std::sort
                follows within a few lines (canonicalizing the output) or when
                annotated.
decoder-abort   Functions on the decode path (decode_*/read_*/parse*/
                deserialize/open*) in src/ must reject malformed input with
                DecodeError — never assert(), abort(), exit(), or throw a
                generic logic error a remote peer could turn into a crash.
include-hygiene Headers start with #pragma once; no ".." in quoted includes;
                a module .cpp includes its own header first.
whitespace      No tabs or trailing whitespace in C++ sources; files end with
                a newline.
msgtype-corpus  Every member of the MsgType wire enum must have a seed in the
                fuzz corpus generator (fuzz/gen_corpus.cpp): a wire type the
                fuzzers never start from is a decode surface the smoke run
                exercises only by accident.
record-corpus   Same rule for the flight-recorder enums (RosterCheat and
                RecEventKind in src/obs/recorder.hpp): every member must
                appear qualified in fuzz/gen_corpus.cpp so each .wmrec
                variant has a well-formed fuzz seed.
penalty-reason  Every PenaltyReason member (src/reputation/
                misbehavior_engine.hpp) must be cased in the reason-string
                table of misbehavior_engine.cpp and named in at least one
                test under tests/: a penalty the metrics can't label or the
                suite never exercises is a scoring path that can silently
                rot.
mutex-guarded   Every mutex declared in src/ (std::mutex or util::Mutex)
                must be named by at least one GUARDED_BY/PT_GUARDED_BY in
                the same file: an unreferenced mutex is invisible to the
                Clang thread-safety analysis (util/thread_annotations.hpp),
                so -Wthread-safety proves nothing about the data it is
                supposed to protect.
transport-factory
                No direct SimNetwork construction outside tests/ and
                src/net/: production and bench code must go through
                net::make_transport (net/transport.hpp) so the
                WATCHMEN_TRANSPORT selector, the control-class shed
                protection and the UDP/FaultShim wiring apply everywhere.
format          (--format only) clang-format --dry-run over src/; skipped
                with a notice when clang-format is not installed.

Suppressing: append `// wmlint: allow(<check>)` to the offending line or the
line directly above it.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

CPP_EXTS = {".hpp", ".cpp", ".h", ".cc"}

# Directories scanned for C++ sources, relative to the repo root.
CPP_DIRS = ("src", "tests", "bench", "examples", "fuzz")

ALLOW_RE = re.compile(r"wmlint:\s*allow\(([\w-]+)\)")

RAW_RANDOM_PATTERNS = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    # libc clock() used as a value — not member calls (x.clock()), qualified
    # names, or accessor declarations (`SimClock& clock() {`).
    (re.compile(r"(?:^|[=(,?+\-*/%]|\breturn\b)\s*clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"steady_clock::now|system_clock::now|high_resolution_clock"),
     "wall-clock time"),
]
# Files allowed to own randomness / time primitives.
RAW_RANDOM_EXEMPT = ("util/rng.hpp", "net/clock.hpp")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*>\s+(\w+)\s*(?:;|\{|=)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*:\s*(?:this->)?(\w+)\s*\)")
SORT_NEARBY_RE = re.compile(r"(?:std::)?(?:stable_)?sort\s*\(")

DECODE_FN_RE = re.compile(
    r"^[\w:&<>,\*\s]*\b(decode_\w*|read_\w*|parse\w*|deserialize|open\w*)\s*\([^;]*$")
DECODER_BANNED = [
    (re.compile(r"(?<!static_)\bassert\s*\("), "assert()"),
    (re.compile(r"\babort\s*\("), "abort()"),
    (re.compile(r"\bexit\s*\("), "exit()"),
    (re.compile(r"throw\s+std::(logic_error|out_of_range|invalid_argument)\b"),
     "generic logic exception"),
]

QUOTED_INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')

# SimNetwork *construction*: `SimNetwork name(...)`, `SimNetwork(...)`,
# `new SimNetwork`, `make_unique<SimNetwork>`. Mentions in comments, types
# of references/pointers, and include lines don't match.
TRANSPORT_CTOR_RE = re.compile(
    r"(?:new\s+(?:net::)?SimNetwork\b"
    r"|make_unique\s*<\s*(?:net::)?SimNetwork\b"
    r"|\bSimNetwork\s+\w+\s*[({]"
    r"|(?<![\w:])(?:net::)?SimNetwork\s*\()")
# Directories whose files may build a SimNetwork directly: the transport
# layer itself and the tests that probe it.
TRANSPORT_EXEMPT_PREFIXES = ("src/net/", "tests/")

# A mutex *object* declaration (member or local): type directly followed by
# a name and `;`/`=`/`{`. References (`Mutex& mu_`), pointers, parameters and
# base-class mentions (`: public std::mutex {`) deliberately don't match.
MUTEX_DECL_RE = re.compile(
    r"\b(?:std::(?:recursive_|shared_|timed_|recursive_timed_)?mutex"
    r"|(?:util::)?Mutex)\s+(\w+)\s*(?:;|=|\{)")
GUARD_TARGET_RE = re.compile(r"\b(?:PT_)?GUARDED_BY\(\s*(?:this->)?(\w+)")


class Finding:
    def __init__(self, path: Path, line: int, check: str, msg: str):
        self.path = path
        self.line = line
        self.check = check
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.msg}"


def allowed(lines: list[str], idx: int, check: str) -> bool:
    """True if line idx (0-based) or the line above carries an allow."""
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m and m.group(1) == check:
                return True
    return False


def check_raw_random(path: Path, rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/"):
        return []
    if any(rel.endswith(e) for e in RAW_RANDOM_EXEMPT):
        return []
    out = []
    for i, line in enumerate(lines):
        for pat, what in RAW_RANDOM_PATTERNS:
            if pat.search(line) and not allowed(lines, i, "raw-random"):
                out.append(Finding(path, i + 1, "raw-random",
                                   f"{what} outside util/rng.hpp — derive a "
                                   "seeded stream via watchmen::Rng instead"))
    return out


def check_wire_order(path: Path, rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/"):
        return []
    # Members are usually declared in the companion header, so scan it too.
    decl_sources = [lines]
    own_header = path.with_suffix(".hpp")
    if path.suffix == ".cpp" and own_header.exists():
        decl_sources.append(own_header.read_text(encoding="utf-8").split("\n"))
    unordered_names = set()
    for src in decl_sources:
        for line in src:
            m = UNORDERED_DECL_RE.search(line)
            if m:
                unordered_names.add(m.group(1))
    if not unordered_names:
        return []
    out = []
    for i, line in enumerate(lines):
        m = RANGE_FOR_RE.search(line)
        if not m or m.group(1) not in unordered_names:
            continue
        if allowed(lines, i, "wire-order"):
            continue
        # Exempt when the iteration output is canonicalized right after.
        window = lines[i + 1:i + 9]
        if any(SORT_NEARBY_RE.search(w) for w in window):
            continue
        out.append(Finding(
            path, i + 1, "wire-order",
            f"iteration over unordered container '{m.group(1)}' — hash order "
            "must not feed protocol/wire decisions; sort the output or "
            "annotate `// wmlint: allow(wire-order)` with a rationale"))
    return out


def decode_fn_spans(lines: list[str]) -> list[tuple[int, int, str]]:
    """(start, end, name) line spans (0-based, end exclusive) of decode fns."""
    spans = []
    i = 0
    while i < len(lines):
        m = DECODE_FN_RE.match(lines[i].rstrip())
        if not m or lines[i].lstrip().startswith("//"):
            i += 1
            continue
        name = m.group(1)
        # Find the opening brace, then brace-match to the function end.
        depth = 0
        opened = False
        j = i
        while j < len(lines):
            code = re.sub(r"//.*$", "", lines[j])
            for ch in code:
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
            if lines[j].rstrip().endswith(";") and not opened:
                break  # declaration only
            if opened and depth <= 0:
                spans.append((i, j + 1, name))
                break
            j += 1
        i = j + 1 if j > i else i + 1
    return spans


def check_decoder_abort(path: Path, rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/"):
        return []
    out = []
    for start, end, name in decode_fn_spans(lines):
        for i in range(start, end):
            for pat, what in DECODER_BANNED:
                if pat.search(lines[i]) and not allowed(lines, i, "decoder-abort"):
                    out.append(Finding(
                        path, i + 1, "decoder-abort",
                        f"{what} in decode-path function '{name}' — malformed "
                        "input must throw watchmen::DecodeError"))
    return out


def check_mutex_guarded(path: Path, rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/"):
        return []
    guarded = set()
    for line in lines:
        for m in GUARD_TARGET_RE.finditer(line):
            guarded.add(m.group(1))
    out = []
    for i, line in enumerate(lines):
        m = MUTEX_DECL_RE.search(line)
        if not m or m.group(1) in guarded:
            continue
        if allowed(lines, i, "mutex-guarded"):
            continue
        out.append(Finding(
            path, i + 1, "mutex-guarded",
            f"mutex '{m.group(1)}' protects nothing the analysis can see — "
            f"annotate the data it guards with GUARDED_BY({m.group(1)}) "
            "(util/thread_annotations.hpp) or add "
            "`// wmlint: allow(mutex-guarded)` with a rationale"))
    return out


def check_transport_factory(path: Path, rel: str,
                            lines: list[str]) -> list[Finding]:
    if rel.startswith(TRANSPORT_EXEMPT_PREFIXES):
        return []
    out = []
    for i, line in enumerate(lines):
        code = re.sub(r"//.*$", "", line)
        if not TRANSPORT_CTOR_RE.search(code):
            continue
        if allowed(lines, i, "transport-factory"):
            continue
        out.append(Finding(
            path, i + 1, "transport-factory",
            "direct SimNetwork construction bypasses net::make_transport — "
            "build a TransportConfig instead (net/transport.hpp) so the "
            "backend selector and UDP wiring apply, or annotate "
            "`// wmlint: allow(transport-factory)` with a rationale"))
    return out


def check_include_hygiene(path: Path, rel: str, lines: list[str]) -> list[Finding]:
    out = []
    if path.suffix in (".hpp", ".h"):
        for i, line in enumerate(lines):
            stripped = line.strip()
            if not stripped or stripped.startswith("//"):
                continue
            if stripped != "#pragma once" and not allowed(lines, i, "include-hygiene"):
                out.append(Finding(path, i + 1, "include-hygiene",
                                   "header must start with #pragma once"))
            break
    first_include = None
    for i, line in enumerate(lines):
        m = QUOTED_INCLUDE_RE.search(line)
        if not m:
            continue
        if first_include is None:
            first_include = (i, m.group(1))
        if ".." in m.group(1) and not allowed(lines, i, "include-hygiene"):
            out.append(Finding(path, i + 1, "include-hygiene",
                               "relative '..' include — use a src/-rooted path"))
    # A module .cpp should include its own header first.
    if rel.startswith("src/") and path.suffix == ".cpp" and first_include:
        own = path.with_suffix(".hpp")
        if own.exists():
            expected = str(Path(rel).relative_to("src").with_suffix(".hpp"))
            i, got = first_include
            if got != expected and not allowed(lines, i, "include-hygiene"):
                out.append(Finding(path, i + 1, "include-hygiene",
                                   f"first include should be own header "
                                   f'"{expected}", found "{got}"'))
    return out


def check_whitespace(path: Path, rel: str, lines: list[str],
                     raw: str) -> list[Finding]:
    out = []
    for i, line in enumerate(lines):
        if "\t" in line and not allowed(lines, i, "whitespace"):
            out.append(Finding(path, i + 1, "whitespace", "tab character"))
        if line != line.rstrip() and not allowed(lines, i, "whitespace"):
            out.append(Finding(path, i + 1, "whitespace", "trailing whitespace"))
    if raw and not raw.endswith("\n"):
        out.append(Finding(path, len(lines), "whitespace",
                           "missing newline at end of file"))
    return out


MSGTYPE_ENUM_RE = re.compile(r"enum\s+class\s+MsgType\b")
MSGTYPE_MEMBER_RE = re.compile(r"^\s*(k[A-Z]\w*)\s*(?:=\s*[^,]+)?,?\s*(?://.*)?$")


def check_msgtype_corpus(root: Path) -> list[Finding]:
    """Every MsgType member must appear as MsgType::kX in the corpus
    generator, so each wire type has at least one well-formed fuzz seed."""
    messages = root / "src" / "core" / "messages.hpp"
    gen = root / "fuzz" / "gen_corpus.cpp"
    if not messages.exists() or not gen.exists():
        return []  # layout not present (e.g. partial checkout): nothing to do
    lines = messages.read_text(encoding="utf-8").split("\n")
    members: list[tuple[int, str]] = []  # (line idx, member name)
    in_enum = False
    for i, line in enumerate(lines):
        if not in_enum:
            if MSGTYPE_ENUM_RE.search(line):
                in_enum = True
            continue
        if "}" in line:
            break
        m = MSGTYPE_MEMBER_RE.match(line)
        if m and m.group(1) != "kNumMsgTypes":
            members.append((i, m.group(1)))
    gen_text = gen.read_text(encoding="utf-8")
    out = []
    for i, name in members:
        if f"MsgType::{name}" in gen_text:
            continue
        if allowed(lines, i, "msgtype-corpus"):
            continue
        out.append(Finding(
            messages, i + 1, "msgtype-corpus",
            f"MsgType::{name} has no seed in fuzz/gen_corpus.cpp — add a "
            "well-formed sealed envelope for it (and regenerate the corpus) "
            "or annotate `// wmlint: allow(msgtype-corpus)`"))
    return out


RECORD_ENUM_RE = re.compile(r"enum\s+class\s+(RosterCheat|RecEventKind)\b")


def check_record_corpus(root: Path) -> list[Finding]:
    """Every RosterCheat / RecEventKind member must appear qualified in the
    corpus generator, so each .wmrec variant has a well-formed fuzz seed."""
    recorder = root / "src" / "obs" / "recorder.hpp"
    gen = root / "fuzz" / "gen_corpus.cpp"
    if not recorder.exists() or not gen.exists():
        return []  # layout not present (e.g. partial checkout): nothing to do
    lines = recorder.read_text(encoding="utf-8").split("\n")
    members: list[tuple[int, str]] = []  # (line idx, qualified member)
    enum_name = None
    for i, line in enumerate(lines):
        if enum_name is None:
            m = RECORD_ENUM_RE.search(line)
            if m:
                enum_name = m.group(1)
            continue
        if "}" in line:
            enum_name = None
            continue
        m = MSGTYPE_MEMBER_RE.match(line)
        if m:
            members.append((i, f"{enum_name}::{m.group(1)}"))
    gen_text = gen.read_text(encoding="utf-8")
    out = []
    for i, qualified in members:
        if qualified in gen_text:
            continue
        if allowed(lines, i, "record-corpus"):
            continue
        out.append(Finding(
            recorder, i + 1, "record-corpus",
            f"{qualified} has no seed in fuzz/gen_corpus.cpp — extend the "
            "fuzz_record recording to cover it (and regenerate the corpus) "
            "or annotate `// wmlint: allow(record-corpus)`"))
    return out


PENALTY_ENUM_RE = re.compile(r"enum\s+class\s+PenaltyReason\b")


def check_penalty_reason(root: Path) -> list[Finding]:
    """Every PenaltyReason member must be cased in the engine's reason-string
    table and named in at least one test, so each typed penalty keeps a
    metric label and regression coverage."""
    hpp = root / "src" / "reputation" / "misbehavior_engine.hpp"
    cpp = root / "src" / "reputation" / "misbehavior_engine.cpp"
    tests_dir = root / "tests"
    if not hpp.exists() or not cpp.exists() or not tests_dir.is_dir():
        return []  # layout not present (e.g. partial checkout): nothing to do
    lines = hpp.read_text(encoding="utf-8").split("\n")
    members: list[tuple[int, str]] = []  # (line idx, member name)
    in_enum = False
    for i, line in enumerate(lines):
        if not in_enum:
            if PENALTY_ENUM_RE.search(line):
                in_enum = True
            continue
        if "}" in line:
            break
        m = MSGTYPE_MEMBER_RE.match(line)
        if m:
            members.append((i, m.group(1)))
    cpp_text = cpp.read_text(encoding="utf-8")
    tests_text = "\n".join(p.read_text(encoding="utf-8")
                           for p in sorted(tests_dir.glob("*.cpp")))
    out = []
    for i, name in members:
        if allowed(lines, i, "penalty-reason"):
            continue
        if f"case PenaltyReason::{name}:" not in cpp_text:
            out.append(Finding(
                hpp, i + 1, "penalty-reason",
                f"PenaltyReason::{name} missing from the to_string() table in "
                "misbehavior_engine.cpp — every reason needs a stable metric "
                "label (rep.penalty{reason=...})"))
        if f"PenaltyReason::{name}" not in tests_text:
            out.append(Finding(
                hpp, i + 1, "penalty-reason",
                f"PenaltyReason::{name} never named in tests/ — add a "
                "regression test or annotate "
                "`// wmlint: allow(penalty-reason)` with a rationale"))
    return out


def run_clang_format(root: Path) -> tuple[list[Finding], bool]:
    """Returns (findings, ran). Skips when clang-format is unavailable."""
    binary = shutil.which("clang-format")
    if binary is None:
        return [], False
    targets = sorted(p for p in (root / "src").rglob("*")
                     if p.suffix in CPP_EXTS)
    findings = []
    for chunk_start in range(0, len(targets), 50):
        chunk = targets[chunk_start:chunk_start + 50]
        proc = subprocess.run(
            [binary, "--dry-run", "-Werror", "--style=file"] +
            [str(p) for p in chunk],
            capture_output=True, text=True, cwd=root)
        if proc.returncode != 0:
            for line in proc.stderr.splitlines():
                m = re.match(r"(.+?):(\d+):\d+: (?:error|warning): (.*)", line)
                if m:
                    findings.append(Finding(Path(m.group(1)), int(m.group(2)),
                                            "format", m.group(3)))
    return findings, True


def lint_file(path: Path, root: Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    try:
        raw = path.read_text(encoding="utf-8")
    except (UnicodeDecodeError, OSError) as e:
        return [Finding(path, 0, "io", f"unreadable: {e}")]
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    findings = []
    findings += check_raw_random(path, rel, lines)
    findings += check_wire_order(path, rel, lines)
    findings += check_decoder_abort(path, rel, lines)
    findings += check_mutex_guarded(path, rel, lines)
    findings += check_transport_factory(path, rel, lines)
    findings += check_include_hygiene(path, rel, lines)
    findings += check_whitespace(path, rel, lines, raw)
    return findings


def collect_files(root: Path, explicit: list[str]) -> list[Path]:
    if explicit:
        files = []
        for arg in explicit:
            p = Path(arg)
            if not p.is_absolute():
                p = root / p
            if p.is_dir():
                files += [f for f in sorted(p.rglob("*")) if f.suffix in CPP_EXTS]
            else:
                files.append(p)
        return files
    files = []
    for d in CPP_DIRS:
        base = root / d
        if base.is_dir():
            files += [f for f in sorted(base.rglob("*")) if f.suffix in CPP_EXTS]
    return files


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--format", action="store_true",
                    help="also run clang-format --dry-run over src/")
    ap.add_argument("paths", nargs="*", help="files or directories (default: repo)")
    args = ap.parse_args(argv)

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"wmlint: no such root: {root}", file=sys.stderr)
        return 2

    findings = []
    for f in collect_files(root, args.paths):
        findings += lint_file(f, root)
    findings += check_msgtype_corpus(root)
    findings += check_record_corpus(root)
    findings += check_penalty_reason(root)

    if args.format:
        fmt_findings, ran = run_clang_format(root)
        findings += fmt_findings
        if not ran:
            print("wmlint: clang-format not found — format check skipped",
                  file=sys.stderr)

    for f in findings:
        print(f)
    n = len(findings)
    print(f"wmlint: {n} finding{'s' if n != 1 else ''}"
          f" in {root}" if n else f"wmlint: clean ({root})")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
